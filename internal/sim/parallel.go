package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"speedlight/internal/telemetry"
)

// Parallel is the sharded implementation of Sim: a conservative
// parallel discrete-event engine built on per-shard-pair channel
// clocks. Domains (one per emulated switch) are partitioned across
// shards; each shard owns an event queue drained by one worker
// goroutine.
//
// Synchronization is per pair, not fleet-wide. Every shard publishes a
// monotone clock pub_i — a lower bound on the time of anything it will
// ever execute or emit again — through an atomic channel-clock table.
// A shard's execution bound is the min over its actual inbound
// neighbor pairs of (pub_j + L_ji), where L_ji is the pair's declared
// lookahead (derived from topology at wiring time via SetShardLinks;
// the default is a complete graph at the engine-wide lookahead). Shards
// with slack therefore run ahead on their own, instead of parking at a
// fleet-wide horizon every lookahead interval: between two GlobalDomain
// events the coordinator starts one epoch, and inside it the workers
// free-run under the pair clocks with no barrier at all.
//
// Cross-shard handoff is a per-pair SPSC lock-free ring (evRing)
// instead of a mutex mailbox merged at barriers. The producer pushes
// during event execution and publishes its clock afterwards; the
// consumer loads the producer's clock before draining the ring, so any
// push the drain misses is from an event at or above the loaded clock
// and the pair bound stays sound. Arrivals merge into the consumer's
// queue in (time, src, seq) key order, which keeps journal, audit and
// snapshot bytes identical at every shard count and GOMAXPROCS.
//
// GlobalDomain events still serialize: they run between epochs, on the
// coordinating goroutine, with every worker parked — an epoch's fence
// never crosses a pending global event. Shard-to-global sends travel
// on per-shard rings the coordinator drains while the epoch runs, and
// execute at the fence in global key order.
//
// Engines with a zero-lookahead pair cannot free-run (a pair clock
// never gets ahead of its neighbor), so they fall back to the legacy
// lockstep round: every shard executes below a shared horizon of
// min-event-time plus the minimum pair lookahead, with a barrier per
// round. That path exists for compatibility with lookahead-0
// configurations; real topologies always have positive link latency.
//
// Determinism. Event order within a shard follows the same
// (time, src, seq) key as the serial Engine; cross-shard events carry
// keys assigned by their (deterministic) scheduling domain, so merge
// order is independent of goroutine interleaving, GOMAXPROCS and shard
// count. A cross-shard send arriving below the pair clock of its
// source is a causality violation and panics — it means the declared
// pair lookahead exceeds the actual cross-shard latency.
//
// Event pooling. Each shard (and the coordinator, via the global
// pseudo-shard) keeps its own event free list. An event is drawn from
// the scheduling context's pool and returned to the pool of whichever
// context pops it, so cross-shard events simply migrate between free
// lists through the rings. No pool is ever touched by two goroutines
// at once: workers only reach their own shard's pool, and the
// coordinator only runs while workers are parked.
//
// Context rules (the serial engine forgives these; this one does not):
// domain state must only be touched by its own domain's events or by
// GlobalDomain events; a domain's Proc must not be used from another
// (non-global) domain's events; Rand is driver/global-context only.
type Parallel struct {
	lookahead Duration
	now       Time // driver/global-context clock (low-water mark)
	horizon   Time // legacy lockstep round bound, valid while roundActive
	// roundActive marks shard execution in flight (epoch, lockstep
	// round, or inline solo run). Written by the coordinator strictly
	// before dispatching and after joining, so worker reads are ordered
	// by the dispatch channel and the barrier.
	roundActive bool
	// solo marks an inline single-shard run on the coordinator: no
	// other shard is executing, so cross-shard sends push straight into
	// the target queue instead of the rings.
	solo bool
	// epochMode selects free-running epochs (every declared pair has
	// positive lookahead) over legacy lockstep rounds.
	epochMode bool
	finalized bool
	domains   []pardom
	shards    []*pshard
	global    *pshard // GlobalDomain-owned events, run by the coordinator
	rng       *rand.Rand
	seedSrc   *rand.Rand
	fired     uint64 // events executed in global context
	wg        sync.WaitGroup
	workersUp bool
	active    []*pshard  // per-round scratch
	staged    [][]*Event // lockstep mid-round ring drains, per target shard
	links     []ShardLink
	custom    bool     // SetShardLinks was called: unlisted pairs panic
	minL      Duration // min declared pair lookahead (lockstep horizon step)
	ringCap   int      // per-pair ring capacity; settable before the first Run (tests)
	// wall is the injected wall-clock source for the barrier profiler
	// (nil = profiling disabled, zero cost). Virtual time cannot measure
	// synchronization skew — shards at the same fence burn different
	// amounts of real time — so this is the one place the engine reads a
	// real clock, and only through an injected func so the simulation
	// itself stays deterministic.
	wall       func() int64
	blockedVec *telemetry.CounterVec

	// Epoch coordination. quiet counts shards whose published clock
	// reached the fence; done counts workers that finished the
	// dispatched job; epochDone releases quiesced workers from their
	// ring-draining duty; panics flags captured worker panics so the
	// coordinator stops waiting for quiescence.
	epochDone atomic.Bool
	quiet     atomic.Int32
	done      atomic.Int32
	panics    atomic.Int32
}

var _ Sim = (*Parallel)(nil)

// ShardLink declares one directed cross-shard channel and its
// conservative lookahead: no send from From to To ever arrives less
// than Lookahead after the sending event's time.
type ShardLink struct {
	From, To  int
	Lookahead Duration
}

// pardom is one domain's placement and schedule counter. The counter is
// only touched by the shard (or the parked-coordinator context)
// currently executing the domain; padding keeps neighboring domains'
// counters off one cache line.
type pardom struct {
	shard int32 // -1 = global
	seq   uint64
	_     [48]byte
}

// inPair is one inbound cross-shard channel: the source shard whose
// published clock bounds this consumer, the pair lookahead, and the
// SPSC ring arrivals travel on.
type inPair struct {
	src    *pshard
	srcIdx int
	la     Duration
	ring   *evRing
	// epochBlockedNs is written by the owning worker during an epoch
	// and folded by the coordinator after the barrier; the cumulative
	// field and counter are coordinator-context only.
	epochBlockedNs int64
	statBlockedNs  int64
	blockedC       *telemetry.Counter
}

// outPair is one outbound cross-shard channel. A negative lookahead
// marks an undeclared pair: sending on it panics, which is how a
// topology-derived link set catches placement drift.
type outPair struct {
	ring *evRing
	la   Duration
}

// stashedEv parks a cross-shard event a producer could not hand off
// because the epoch was torn down (another worker panicked) while its
// ring was full. The coordinator routes it after the barrier.
type stashedEv struct {
	tgt int // target shard, -1 = global
	ev  *Event
}

// pshard is one shard: an event queue, its pair-clock publication, its
// inbound/outbound rings, and the shard's event free list.
type pshard struct {
	q        evq
	pool     eventPool
	now      Time
	fired    uint64
	job      chan Time
	panicked any // panic captured by the worker, re-raised at the barrier
	idx      int

	in       []inPair
	out      []outPair // indexed by target shard
	gring    *evRing   // shard-to-global sends, drained by the coordinator
	minOutLa Duration  // min declared outbound lookahead (solo-run bound)
	overflow []stashedEv

	// pub is the shard's published channel clock: a lower bound on the
	// time of anything the shard will execute or emit again. Written
	// only by the owning worker during an epoch (and by the coordinator
	// between epochs); read by neighbor workers. Padded onto its own
	// cache line — it is the one hot cross-shard word.
	_   [64]byte
	pub atomic.Int64
	_   [56]byte

	// Profiling state. roundWorkNs (lockstep/solo) and the epoch*
	// fields are written by the owning worker during a round or epoch
	// and read by the coordinator after the barrier; the cumulative
	// fields and cached counters are coordinator-context only.
	roundWorkNs int64
	epochWorkNs int64
	epochWaitNs int64
	epochActive bool
	statRounds  uint64
	statWorkNs  int64
	statWaitNs  int64
	workC       *telemetry.Counter
	waitC       *telemetry.Counter
}

// nextTime returns the shard's earliest live event time, recycling
// cancelled queue tops into the shard's pool. Must only be called by
// the context that currently owns the shard (its worker during an
// epoch, the coordinator otherwise).
func (sh *pshard) nextTime() Time {
	for {
		ev := sh.q.peek()
		if ev == nil {
			return maxTime
		}
		if ev.canceled {
			sh.q.pop()
			sh.pool.put(ev)
			continue
		}
		return ev.at
	}
}

// NewParallel returns a sharded engine with the given worker shard
// count and conservative lookahead. The lookahead must not exceed the
// minimum virtual-time latency of any cross-shard interaction the
// simulation performs; larger values are detected at run time as
// causality violations. By default every ordered shard pair is a
// channel at this lookahead; SetShardLinks narrows the set to the
// pairs the topology actually wires, with per-pair lookaheads.
// Randomness derives entirely from seed, exactly as in NewEngine.
func NewParallel(seed int64, shards int, lookahead Duration) *Parallel {
	if shards < 1 {
		shards = 1
	}
	if lookahead < 0 {
		lookahead = 0
	}
	p := &Parallel{
		lookahead: lookahead,
		rng:       rand.New(rand.NewSource(seed)),
		seedSrc:   rand.New(rand.NewSource(seed ^ 0x5eed_11a7)),
		global:    &pshard{q: newEvq()},
		shards:    make([]*pshard, shards),
		domains:   []pardom{{shard: -1}}, // GlobalDomain
	}
	for i := range p.shards {
		p.shards[i] = &pshard{q: newEvq(), idx: i}
	}
	return p
}

// Shards returns the worker shard count.
func (p *Parallel) Shards() int { return len(p.shards) }

// Lookahead returns the configured engine-wide lookahead (the default
// pair lookahead when no explicit link set was declared).
func (p *Parallel) Lookahead() Duration { return p.lookahead }

// SetShardLinks declares the directed cross-shard channels the
// simulation will actually use, replacing the default complete pair
// graph. Each link's lookahead must be a true lower bound on the
// latency of every send from From to To; a send on a pair not in the
// set panics. Duplicate pairs keep the smallest lookahead. Must be
// called before the first Run*.
func (p *Parallel) SetShardLinks(links []ShardLink) {
	if p.finalized {
		panic("sim: SetShardLinks after the first Run")
	}
	n := len(p.shards)
	for _, l := range links {
		if l.From < 0 || l.From >= n || l.To < 0 || l.To >= n {
			panic(fmt.Sprintf("sim: shard link %d->%d out of range [0,%d)", l.From, l.To, n))
		}
		if l.From == l.To {
			panic(fmt.Sprintf("sim: self shard link %d->%d", l.From, l.To))
		}
		if l.Lookahead < 0 {
			panic(fmt.Sprintf("sim: negative lookahead on shard link %d->%d", l.From, l.To))
		}
	}
	p.links = append(p.links[:0], links...)
	p.custom = true
}

// finalize freezes the pair graph and builds the per-pair rings and
// clock table. Runs once, at the first Run* call.
func (p *Parallel) finalize() {
	if p.finalized {
		return
	}
	p.finalized = true
	if p.ringCap <= 0 {
		p.ringCap = 1024
	}
	n := len(p.shards)
	for _, sh := range p.shards {
		sh.out = make([]outPair, n)
		for j := range sh.out {
			sh.out[j].la = -1
		}
		sh.gring = newEvRing(p.ringCap)
		sh.minOutLa = Duration(maxTime)
	}
	links := p.links
	if !p.custom {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					links = append(links, ShardLink{From: i, To: j, Lookahead: p.lookahead})
				}
			}
		}
	}
	for _, l := range links {
		from, to := p.shards[l.From], p.shards[l.To]
		if cur := from.out[l.To].la; cur >= 0 {
			if l.Lookahead < cur {
				from.out[l.To].la = l.Lookahead
				for k := range to.in {
					if to.in[k].srcIdx == l.From {
						to.in[k].la = l.Lookahead
					}
				}
			}
			continue
		}
		r := newEvRing(p.ringCap)
		from.out[l.To] = outPair{ring: r, la: l.Lookahead}
		to.in = append(to.in, inPair{src: from, srcIdx: l.From, la: l.Lookahead, ring: r})
	}
	p.minL = Duration(maxTime)
	zero := false
	for _, sh := range p.shards {
		sort.Slice(sh.in, func(a, b int) bool { return sh.in[a].srcIdx < sh.in[b].srcIdx })
		for j := range sh.out {
			la := sh.out[j].la
			if la < 0 {
				continue
			}
			if la < sh.minOutLa {
				sh.minOutLa = la
			}
			if la < p.minL {
				p.minL = la
			}
			if la == 0 {
				zero = true
			}
		}
	}
	if p.minL == Duration(maxTime) {
		p.minL = p.lookahead
	}
	p.epochMode = !zero
	p.staged = make([][]*Event, n)
	p.ensurePairCounters()
}

// Place assigns a domain to a shard. All placements must happen before
// the first Run* call; unplaced domains default to (domain-1) modulo
// the shard count. GlobalDomain cannot be placed.
func (p *Parallel) Place(domain, shard int) {
	if domain <= 0 {
		panic(fmt.Sprintf("sim: cannot place domain %d", domain))
	}
	if shard < 0 || shard >= len(p.shards) {
		panic(fmt.Sprintf("sim: shard %d out of range [0,%d)", shard, len(p.shards)))
	}
	p.ensureDomain(domain)
	p.domains[domain].shard = int32(shard)
}

func (p *Parallel) ensureDomain(domain int) {
	if p.roundActive {
		panic("sim: domain table grown during a round")
	}
	for len(p.domains) <= domain {
		d := len(p.domains)
		p.domains = append(p.domains, pardom{shard: int32((d - 1) % len(p.shards))})
	}
}

// Now returns the driver-context virtual time. It is only meaningful
// between Run* calls and inside GlobalDomain events; domain code must
// use its own Proc's Now.
func (p *Parallel) Now() Time { return p.now }

// Rand returns the engine's main random stream (driver/global-context
// only).
func (p *Parallel) Rand() *rand.Rand { return p.rng }

// NewRand returns a fresh stream seeded from the engine. Call it in a
// deterministic order (normally at build time) and use each stream from
// a single domain.
func (p *Parallel) NewRand() *rand.Rand {
	return rand.New(rand.NewSource(p.seedSrc.Int63()))
}

// EnableBarrierMetrics turns on the shard synchronization profiler.
// nowNs is the wall-clock source (normally telemetry.NowNs — the
// engine never reads a real clock directly, keeping the simulation
// deterministic by construction). When reg is non-nil the per-shard
// cumulative totals are also published as the counters
// speedlight_sim_round_work_ns and speedlight_sim_barrier_wait_ns,
// labeled by shard: work is the wall time a shard spent executing
// events, wait is the wall time it spent stalled on a neighbor's pair
// clock or idling out an epoch — the direct diagnostic for
// shard-scaling plateaus. Per-pair stall attribution is additionally
// published as speedlight_sim_blocked_on_shard_ns labeled
// waiter/holdup, and available through BlockedProfile. Call before the
// first Run*; not safe during a round.
func (p *Parallel) EnableBarrierMetrics(reg *telemetry.Registry, nowNs func() int64) {
	if nowNs == nil {
		return
	}
	p.wall = nowNs
	if reg == nil {
		return
	}
	workV := reg.CounterVec("speedlight_sim_round_work_ns",
		"Wall nanoseconds each shard spent executing events inside epochs and rounds.",
		"shard")
	waitV := reg.CounterVec("speedlight_sim_barrier_wait_ns",
		"Wall nanoseconds each shard spent stalled on pair clocks or idling out epochs.",
		"shard")
	for i, sh := range p.shards {
		lbl := strconv.Itoa(i)
		sh.workC = workV.With(lbl)
		sh.waitC = waitV.With(lbl)
	}
	p.blockedVec = reg.CounterVec("speedlight_sim_blocked_on_shard_ns",
		"Wall nanoseconds a waiter shard spent stalled on a specific holdup shard's published pair clock.",
		"waiter", "holdup")
	p.ensurePairCounters()
}

// ensurePairCounters caches one blocked-on counter per declared inbound
// pair. Needs both the metric vec and the finalized pair graph, in
// either order.
func (p *Parallel) ensurePairCounters() {
	if p.blockedVec == nil || !p.finalized {
		return
	}
	for _, sh := range p.shards {
		w := strconv.Itoa(sh.idx)
		for k := range sh.in {
			ip := &sh.in[k]
			if ip.blockedC == nil {
				ip.blockedC = p.blockedVec.With(w, strconv.Itoa(ip.srcIdx))
			}
		}
	}
}

// BarrierShardStats is one shard's cumulative synchronization
// accounting.
type BarrierShardStats struct {
	Shard  int
	Rounds uint64 // epochs/rounds the shard executed events in
	WorkNs int64  // wall time spent executing events
	WaitNs int64  // wall time spent stalled on pair clocks or idling
}

// BarrierProfile returns each shard's cumulative work/wait split.
// Driver context only; returns nil unless EnableBarrierMetrics was
// called.
func (p *Parallel) BarrierProfile() []BarrierShardStats {
	if p.wall == nil {
		return nil
	}
	stats := make([]BarrierShardStats, len(p.shards))
	for i, sh := range p.shards {
		stats[i] = BarrierShardStats{
			Shard: i, Rounds: sh.statRounds,
			WorkNs: sh.statWorkNs, WaitNs: sh.statWaitNs,
		}
	}
	return stats
}

// BlockedPairStats is one directed pair's cumulative stall
// attribution: wall time the waiter shard spent unable to execute
// because the holdup shard's published clock bounded it.
type BlockedPairStats struct {
	Waiter int
	Holdup int
	WaitNs int64
}

// BlockedProfile returns the per-pair stall attribution, most blocking
// pair first. Driver context only; returns nil unless
// EnableBarrierMetrics was called.
func (p *Parallel) BlockedProfile() []BlockedPairStats {
	if p.wall == nil {
		return nil
	}
	var out []BlockedPairStats
	for _, sh := range p.shards {
		for k := range sh.in {
			ip := &sh.in[k]
			if ip.statBlockedNs > 0 {
				out = append(out, BlockedPairStats{Waiter: sh.idx, Holdup: ip.srcIdx, WaitNs: ip.statBlockedNs})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].WaitNs != out[j].WaitNs {
			return out[i].WaitNs > out[j].WaitNs
		}
		if out[i].Waiter != out[j].Waiter {
			return out[i].Waiter < out[j].Waiter
		}
		return out[i].Holdup < out[j].Holdup
	})
	return out
}

// Fired returns the total number of events executed so far.
func (p *Parallel) Fired() uint64 {
	n := p.fired
	for _, sh := range p.shards {
		n += sh.fired
	}
	return n
}

// Pending returns the number of scheduled, uncancelled events. Driver
// context only — between Run* calls every ring is drained, so the
// queues hold the whole schedule.
func (p *Parallel) Pending() int {
	n := 0
	count := func(sh *pshard) {
		sh.q.forEach(func(ev *Event) {
			if !ev.canceled {
				n++
			}
		})
	}
	count(p.global)
	for _, sh := range p.shards {
		count(sh)
	}
	return n
}

// Proc returns the scheduling handle of one domain.
func (p *Parallel) Proc(domain int) Proc {
	if domain < 0 {
		panic(fmt.Sprintf("sim: negative domain %d", domain))
	}
	p.ensureDomain(domain)
	return parProc{p: p, dom: domain}
}

// Schedule runs fn at virtual time at in the global domain.
func (p *Parallel) Schedule(at Time, fn func()) Handle {
	return parProc{p: p, dom: GlobalDomain}.Schedule(at, fn)
}

// After runs fn d after the current time in the global domain.
func (p *Parallel) After(d Duration, fn func()) Handle {
	return parProc{p: p, dom: GlobalDomain}.After(d, fn)
}

// Cancel suppresses a scheduled event. On the Parallel engine the slot
// is reclaimed lazily when the event's time is reached.
func (p *Parallel) Cancel(h Handle) {
	parProc{p: p, dom: GlobalDomain}.Cancel(h)
}

// NewTicker schedules fn every period in the global domain.
func (p *Parallel) NewTicker(period Duration, fn func()) *Ticker {
	return parProc{p: p, dom: GlobalDomain}.NewTicker(period, fn)
}

// Run executes events until none remain.
func (p *Parallel) Run() {
	p.run(maxTime)
	for _, sh := range p.shards {
		if sh.now > p.now {
			p.now = sh.now
		}
	}
}

// RunUntil executes events with time <= t, then sets the clock to t.
func (p *Parallel) RunUntil(t Time) {
	if t < maxTime {
		p.run(t + 1)
	} else {
		p.run(maxTime)
	}
	if p.now < t {
		p.now = t
	}
}

// RunFor advances the simulation by d from the current time.
func (p *Parallel) RunFor(d Duration) { p.RunUntil(p.now.Add(d)) }

// run is the coordinator loop: alternate serial global events and
// shard execution (free-running epochs, inline solo runs, or legacy
// lockstep rounds) until no event below limit remains.
func (p *Parallel) run(limit Time) {
	p.finalize()
	defer p.stopWorkers()
	for {
		p.drainRings()
		g := p.global.nextTime()
		s := maxTime
		for _, sh := range p.shards {
			if t := sh.nextTime(); t < s {
				s = t
			}
		}
		next := g
		if s < next {
			next = s
		}
		if next >= limit {
			return
		}
		if g <= s {
			// Global events serialize: workers are parked, so the
			// event may touch any domain's state.
			ev := p.global.q.pop()
			if ev.canceled {
				p.global.pool.put(ev)
				continue
			}
			p.now = ev.at
			p.fired++
			ev.fire()
			p.global.pool.put(ev)
			continue
		}
		fence := g
		if limit < fence {
			fence = limit
		}
		if !p.epochMode {
			horizon := s.Add(p.minL)
			if horizon <= s {
				horizon = s + 1 // progress under zero lookahead (or overflow)
			}
			if fence < horizon {
				horizon = fence
			}
			p.runRound(horizon)
			continue
		}
		busy := 0
		var bsh *pshard
		for _, sh := range p.shards {
			if sh.nextTime() < fence {
				busy++
				bsh = sh
			}
		}
		if busy == 1 {
			p.soloRun(bsh, fence)
			continue
		}
		p.runEpoch(fence, s)
	}
}

// soloRun executes the single busy shard inline on the coordinator, up
// to the point where another shard could legally receive work (its
// minimum outbound lookahead) or the fence, whichever is first. No
// worker dispatch, no rings: with every other shard quiet, cross-shard
// sends push straight into the target queue.
func (p *Parallel) soloRun(sh *pshard, fence Time) {
	head := sh.nextTime()
	lim := head.Add(sh.minOutLa)
	if lim < head {
		lim = maxTime // overflow, or no outbound pairs at all
	} else if lim == head {
		lim = head + 1
	}
	if fence < lim {
		lim = fence
	}
	p.active = append(p.active[:0], sh)
	p.roundActive, p.solo = true, true
	if p.wall != nil {
		t0 := p.wall()
		t := p.wall()
		p.process(sh, lim)
		sh.roundWorkNs = p.wall() - t
		p.roundActive, p.solo = false, false
		p.accountRound(p.wall()-t0, p.active)
		return
	}
	p.process(sh, lim)
	p.roundActive, p.solo = false, false
}

// runEpoch free-runs every shard below fence under the per-pair
// clocks. s is the global minimum pending shard event time — the
// trivially sound initial clock publication. The coordinator's only
// mid-epoch duty is draining the shard-to-global rings; everything
// else is worker-to-worker through the clock table and the pair rings.
func (p *Parallel) runEpoch(fence, s Time) {
	p.epochDone.Store(false)
	p.quiet.Store(0)
	p.done.Store(0)
	for _, sh := range p.shards {
		sh.pub.Store(int64(s))
	}
	p.roundActive = true
	p.startWorkers()
	n := int32(len(p.shards))
	p.wg.Add(len(p.shards))
	for _, sh := range p.shards {
		sh.job <- fence
	}
	for {
		p.drainGlobalRings()
		if p.quiet.Load() >= n || p.panics.Load() > 0 {
			break
		}
		runtime.Gosched()
	}
	p.epochDone.Store(true)
	for p.done.Load() < n {
		p.drainGlobalRings()
		runtime.Gosched()
	}
	p.wg.Wait()
	p.roundActive = false
	if p.wall != nil {
		p.foldEpoch()
	}
	p.drainRings()
	p.raisePanics()
}

// runRound is the legacy lockstep path for zero-lookahead pair graphs:
// every shard with events below horizon executes them behind a shared
// bound, with a barrier per round. Cross-shard sends still travel on
// the rings; the coordinator drains them mid-round (into a staging
// area — the target's queue is its worker's to touch) to keep full
// rings from wedging a producer against a parked consumer.
func (p *Parallel) runRound(horizon Time) {
	active := p.active[:0]
	for _, sh := range p.shards {
		if sh.nextTime() < horizon {
			active = append(active, sh)
		}
	}
	p.active = active
	p.horizon = horizon
	p.roundActive = true
	var t0 int64
	if p.wall != nil {
		t0 = p.wall()
	}
	if len(active) == 1 {
		// Single busy shard: run inline, skip the barrier round-trip.
		sh := active[0]
		p.solo = true
		if p.wall != nil {
			t := p.wall()
			p.process(sh, horizon)
			sh.roundWorkNs = p.wall() - t
		} else {
			p.process(sh, horizon)
		}
		p.solo = false
	} else {
		p.startWorkers()
		p.done.Store(0)
		p.wg.Add(len(active))
		for _, sh := range active {
			sh.job <- horizon
		}
		n := int32(len(active))
		for p.done.Load() < n {
			p.pollRings()
			runtime.Gosched()
		}
		p.wg.Wait()
	}
	p.roundActive = false
	if p.wall != nil {
		p.accountRound(p.wall()-t0, active)
	}
	p.flushStaged()
	p.drainRings()
	p.raisePanics()
}

// raisePanics re-raises worker panics on the coordinator so they reach
// the Run* caller like a serial panic would. Lowest shard wins for a
// deterministic message.
func (p *Parallel) raisePanics() {
	if p.panics.Load() == 0 {
		return
	}
	p.panics.Store(0)
	var first any
	for _, sh := range p.shards {
		if r := sh.panicked; r != nil {
			sh.panicked = nil
			if first == nil {
				first = r
			}
		}
	}
	if first != nil {
		panic(first)
	}
}

// accountRound folds one lockstep round's (or solo run's) wall-clock
// duration into each active shard's work/wait split: a shard's wait is
// the round's wall duration minus the time its own worker spent
// draining events. Coordinator context, after the barrier — the
// workers' roundWorkNs writes are ordered by wg.Wait.
func (p *Parallel) accountRound(roundNs int64, active []*pshard) {
	if roundNs < 0 {
		roundNs = 0
	}
	for _, sh := range active {
		work := sh.roundWorkNs
		sh.roundWorkNs = 0
		if work < 0 {
			work = 0
		}
		if work > roundNs {
			work = roundNs // clock skew between reader contexts
		}
		wait := roundNs - work
		sh.statRounds++
		sh.statWorkNs += work
		sh.statWaitNs += wait
		if sh.workC != nil {
			sh.workC.Add(uint64(work))
			sh.waitC.Add(uint64(wait))
		}
	}
}

// foldEpoch folds the workers' per-epoch accounting into the
// cumulative per-shard and per-pair totals. Coordinator context, after
// the barrier.
func (p *Parallel) foldEpoch() {
	for _, sh := range p.shards {
		work, wait := sh.epochWorkNs, sh.epochWaitNs
		sh.epochWorkNs, sh.epochWaitNs = 0, 0
		if work < 0 {
			work = 0
		}
		if wait < 0 {
			wait = 0
		}
		if sh.epochActive {
			sh.statRounds++
		}
		sh.epochActive = false
		sh.statWorkNs += work
		sh.statWaitNs += wait
		if sh.workC != nil {
			sh.workC.Add(uint64(work))
			sh.waitC.Add(uint64(wait))
		}
		for k := range sh.in {
			ip := &sh.in[k]
			if d := ip.epochBlockedNs; d > 0 {
				ip.epochBlockedNs = 0
				ip.statBlockedNs += d
				if ip.blockedC != nil {
					ip.blockedC.Add(uint64(d))
				}
			}
		}
	}
}

// epochBatch bounds how many events a worker executes between clock
// republications, so neighbors waiting on this shard's pair clock see
// it advance at a bounded staleness.
const epochBatch = 128

// epochLoop is one worker's free-run: load each inbound neighbor's
// published clock (acquire), drain that pair's ring, execute a bounded
// batch below min(inbound bounds, fence), republish own clock
// (release), repeat. The load-before-drain order is what keeps the
// bound sound: any push the drain missed was made after the loaded
// clock was published, so it arrives at or above loaded clock plus the
// pair lookahead. A worker whose clock reaches the fence counts itself
// quiescent but keeps draining its inbound rings — a parked consumer
// would wedge a producer spinning on a full ring — until the
// coordinator declares the epoch done.
//
//speedlight:shard
func (p *Parallel) epochLoop(sh *pshard, fence Time) {
	counted := false
	timing := p.wall != nil
	var lastWall int64
	if timing {
		lastWall = p.wall()
	}
	for !p.epochDone.Load() {
		bound := maxTime
		holdup := -1
		for k := range sh.in {
			ip := &sh.in[k]
			b := Time(ip.src.pub.Load())
			p.drainRing(sh, ip.ring)
			hb := b.Add(ip.la)
			if hb < b {
				hb = maxTime // overflow
			}
			if hb < bound {
				bound = hb
				holdup = k
			}
		}
		head := sh.nextTime()
		pub := head
		if bound < pub {
			pub = bound
		}
		if int64(pub) > sh.pub.Load() {
			sh.pub.Store(int64(pub))
		}
		if !counted && pub >= fence {
			counted = true
			p.quiet.Add(1)
		}
		lim := bound
		if fence < lim {
			lim = fence
		}
		if head < lim {
			if timing {
				t := p.wall()
				sh.epochWaitNs += t - lastWall
				lastWall = t
			}
			p.processBatch(sh, lim, epochBatch)
			sh.epochActive = true
			if timing {
				t := p.wall()
				sh.epochWorkNs += t - lastWall
				lastWall = t
			}
			continue
		}
		if timing {
			t := p.wall()
			d := t - lastWall
			lastWall = t
			sh.epochWaitNs += d
			if d > 0 && head < fence && holdup >= 0 {
				sh.in[holdup].epochBlockedNs += d
			}
		}
		runtime.Gosched()
	}
	if timing {
		sh.epochWaitNs += p.wall() - lastWall
	}
}

// processBatch drains up to max of one shard's events below lim in
// (time, src, seq) order. Worker context, inside an epoch. Fired and
// cancelled events return to this shard's pool — the popping context
// owns the recycle.
//
//speedlight:hotpath
//speedlight:shard
func (p *Parallel) processBatch(sh *pshard, lim Time, max int) {
	for n := 0; n < max; n++ {
		top := sh.q.peek()
		if top == nil || top.at >= lim {
			return
		}
		sh.q.pop()
		if top.canceled {
			sh.pool.put(top)
			continue
		}
		sh.now = top.at
		sh.fired++
		top.fire()
		sh.pool.put(top)
	}
}

// process drains one shard's events below horizon in (time, src, seq)
// order. Runs on the shard's worker during lockstep rounds, or inline
// on the coordinator during solo runs. Fired and cancelled events
// return to this shard's pool — the popping context owns the recycle.
//
//speedlight:hotpath
//speedlight:shard
func (p *Parallel) process(sh *pshard, horizon Time) {
	for {
		top := sh.q.peek()
		if top == nil || top.at >= horizon {
			break
		}
		sh.q.pop()
		if top.canceled {
			sh.pool.put(top)
			continue
		}
		sh.now = top.at
		sh.fired++
		top.fire()
		sh.pool.put(top)
	}
}

// drainRing merges one inbound ring's arrivals into the shard's queue.
// Must be called by the ring's current consumer: the owning worker
// during an epoch, the coordinator after the barrier.
//
//speedlight:shard
func (p *Parallel) drainRing(sh *pshard, r *evRing) {
	for {
		ev := r.tryPop()
		if ev == nil {
			return
		}
		sh.q.push(ev)
	}
}

// drainGlobalRings moves shard-to-global sends into the global queue.
// Coordinator context (the coordinator is these rings' only consumer,
// mid-epoch and after).
//
//speedlight:global-only
func (p *Parallel) drainGlobalRings() {
	for _, sh := range p.shards {
		for {
			ev := sh.gring.tryPop()
			if ev == nil {
				break
			}
			p.global.q.push(ev)
		}
	}
}

// drainRings sweeps every ring and overflow stash into the owning
// queues. Coordinator context, workers parked.
//
//speedlight:global-only
func (p *Parallel) drainRings() {
	for _, sh := range p.shards {
		for k := range sh.in {
			p.drainRing(sh, sh.in[k].ring)
		}
		if len(sh.overflow) > 0 {
			for _, st := range sh.overflow {
				if st.tgt < 0 {
					p.global.q.push(st.ev)
				} else {
					p.shards[st.tgt].q.push(st.ev)
				}
			}
			sh.overflow = sh.overflow[:0]
		}
	}
	p.drainGlobalRings()
}

// pollRings is the coordinator's mid-lockstep-round drain: cross-shard
// arrivals go to a per-target staging area (the target queue belongs
// to its worker until the barrier), global sends straight to the
// global queue. In lockstep mode the coordinator is every ring's
// consumer — the workers only produce.
//
//speedlight:global-only
func (p *Parallel) pollRings() {
	for _, sh := range p.shards {
		for k := range sh.in {
			ip := &sh.in[k]
			for {
				ev := ip.ring.tryPop()
				if ev == nil {
					break
				}
				p.staged[sh.idx] = append(p.staged[sh.idx], ev)
			}
		}
	}
	p.drainGlobalRings()
}

// flushStaged pushes mid-round staged arrivals into their target
// queues. Coordinator context, after the barrier.
//
//speedlight:global-only
func (p *Parallel) flushStaged() {
	for i, st := range p.staged {
		if len(st) == 0 {
			continue
		}
		for _, ev := range st {
			p.shards[i].q.push(ev)
		}
		p.staged[i] = st[:0]
	}
}

// pushRing hands one cross-shard (or shard-to-global) event to its
// pair ring. The fast path is a single tryPush; the slow path sheds
// backpressure without deadlock.
//
//speedlight:hotpath
//speedlight:pool-transfer ev
func (p *Parallel) pushRing(sh *pshard, r *evRing, ev *Event, tgt int) {
	if r.tryPush(ev) {
		return
	}
	p.pushRingSlow(sh, r, ev, tgt)
}

// pushRingSlow spins on a full ring. In epoch mode the producer drains
// its own inbound rings while it waits — every ring's consumer is
// always either free-running or in this loop, so every full ring is
// eventually drained and the wait graph cannot deadlock. If the epoch
// is torn down mid-spin (another worker panicked), the event is parked
// in the overflow stash for the coordinator to route after the
// barrier. In lockstep mode the coordinator is the consumer and is
// polling concurrently, so a plain yield loop suffices.
func (p *Parallel) pushRingSlow(sh *pshard, r *evRing, ev *Event, tgt int) {
	for {
		if p.epochMode {
			for k := range sh.in {
				p.drainRing(sh, sh.in[k].ring)
			}
			if p.epochDone.Load() {
				sh.overflow = append(sh.overflow, stashedEv{tgt: tgt, ev: ev})
				return
			}
		}
		if r.tryPush(ev) {
			return
		}
		runtime.Gosched()
	}
}

func (p *Parallel) startWorkers() {
	if p.workersUp {
		return
	}
	p.workersUp = true
	for _, sh := range p.shards {
		// The worker receives the channel as an argument: a retired
		// worker from a previous Run* call may not have executed its
		// first instruction yet, so it must never load the job field
		// the next generation's startWorkers is about to overwrite.
		job := make(chan Time, 1)
		sh.job = job
		go func(sh *pshard, job chan Time) {
			for h := range job {
				func() {
					defer func() {
						if r := recover(); r != nil {
							sh.panicked = r
							p.panics.Add(1)
						}
						p.done.Add(1)
						p.wg.Done()
					}()
					if p.epochMode {
						p.epochLoop(sh, h)
					} else if p.wall != nil {
						t := p.wall()
						p.process(sh, h)
						sh.roundWorkNs = p.wall() - t
					} else {
						p.process(sh, h)
					}
				}()
			}
		}(sh, job)
	}
}

// stopWorkers retires the workers at the end of each Run* call, so an
// idle engine holds no goroutines.
func (p *Parallel) stopWorkers() {
	if !p.workersUp {
		return
	}
	p.workersUp = false
	for _, sh := range p.shards {
		close(sh.job)
	}
}

// parProc is one domain's scheduling handle on the Parallel engine.
type parProc struct {
	p   *Parallel
	dom int
}

func (pr parProc) Domain() int { return pr.dom }

// Now returns the domain's shard-local clock during rounds and the
// global clock otherwise (driver context, or a GlobalDomain event
// executing with workers parked).
//
//speedlight:shard
func (pr parProc) Now() Time {
	p := pr.p
	if p.roundActive {
		if sh := p.shardOf(pr.dom); sh != nil {
			return sh.now
		}
	}
	return p.now
}

// shardOf resolves a domain to its home shard (nil for GlobalDomain):
// the read-only placement lookup the handoff protocol starts from.
//
//speedlight:shard-handoff
func (p *Parallel) shardOf(dom int) *pshard {
	if s := p.domains[dom].shard; s >= 0 {
		return p.shards[s]
	}
	return nil
}

func (pr parProc) Schedule(at Time, fn func()) Handle {
	return pr.sendAt(pr.dom, at, fn, nil, nil, nil, 0)
}

func (pr parProc) After(d Duration, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return pr.sendAt(pr.dom, pr.Now().Add(d), fn, nil, nil, nil, 0)
}

func (pr parProc) Send(owner int, d Duration, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return pr.sendAt(owner, pr.Now().Add(d), fn, nil, nil, nil, 0)
}

func (pr parProc) SendAt(owner int, at Time, fn func()) Handle {
	return pr.sendAt(owner, at, fn, nil, nil, nil, 0)
}

func (pr parProc) ScheduleCall(at Time, fn CallFn, a, b any, i int64) Handle {
	return pr.sendAt(pr.dom, at, nil, fn, a, b, i)
}

func (pr parProc) AfterCall(d Duration, fn CallFn, a, b any, i int64) Handle {
	if d < 0 {
		d = 0
	}
	return pr.sendAt(pr.dom, pr.Now().Add(d), nil, fn, a, b, i)
}

func (pr parProc) SendCall(owner int, d Duration, fn CallFn, a, b any, i int64) Handle {
	if d < 0 {
		d = 0
	}
	return pr.sendAt(owner, pr.Now().Add(d), nil, fn, a, b, i)
}

// sendAt schedules a callback in domain owner at time at, keyed by this
// domain's schedule counter. The event comes from the scheduling
// context's free list: the worker's own shard pool during a round
// (workers never reach another shard's pool), or — from driver/global
// context, with every worker parked — the scheduling domain's home
// pool. Cross-shard events travel the pair's ring (or go straight to
// the target queue when no other shard is executing).
//
//speedlight:hotpath
//speedlight:shard
//speedlight:shard-handoff
func (pr parProc) sendAt(owner int, at Time, fn func(), cfn CallFn, a, b any, i int64) Handle {
	p := pr.p
	if owner < 0 || owner >= len(p.domains) {
		panic(fmt.Sprintf("sim: send to unknown domain %d", owner))
	}
	ds := &p.domains[pr.dom]
	src := ds.shard
	home := p.global
	if src >= 0 {
		home = p.shards[src]
	}
	ev := home.pool.get()
	ev.at = at
	ev.src = int32(pr.dom)
	ev.seq = ds.seq
	ev.owner = int32(owner)
	ev.fn = fn
	ev.cfn = cfn
	ev.a = a
	ev.b = b
	ev.i = i
	ds.seq++
	h := Handle{ev: ev, gen: ev.gen}
	tgt := p.domains[owner].shard
	if !p.roundActive {
		// Coordinator or driver context: workers are parked, push
		// straight into the owning queue.
		if at < p.now {
			panic(fmt.Sprintf("sim: schedule at %d before now %d", at, p.now))
		}
		dst := p.global
		if tgt >= 0 {
			dst = p.shards[tgt]
		}
		dst.q.push(ev)
		return h
	}
	if src < 0 {
		panic("sim: GlobalDomain proc used inside a shard round")
	}
	sh := p.shards[src]
	if at < sh.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", at, sh.now))
	}
	switch {
	case tgt == src:
		sh.q.push(ev)
	case tgt < 0:
		// To the global domain: executes at the fence, at the correct
		// position of the global order.
		if p.solo {
			p.global.q.push(ev)
		} else {
			p.pushRing(sh, sh.gring, ev, -1)
		}
	default:
		op := &sh.out[tgt]
		if op.la < 0 {
			panic(fmt.Sprintf("sim: cross-shard send %d->%d outside the declared shard-link set", src, tgt))
		}
		if at < sh.now.Add(op.la) {
			panic(fmt.Sprintf(
				"sim: causality violation: cross-shard send %d->%d at %d below the pair clock %d (pair lookahead %d exceeds the actual cross-shard latency)",
				src, tgt, at, sh.now.Add(op.la), op.la))
		}
		if !p.epochMode && at < p.horizon {
			panic(fmt.Sprintf(
				"sim: causality violation: cross-shard send at %d inside round horizon %d (lookahead %d exceeds the minimum cross-shard latency)",
				at, p.horizon, p.minL))
		}
		if p.solo {
			p.shards[tgt].q.push(ev)
		} else {
			p.pushRing(sh, op.ring, ev, int(tgt))
		}
	}
	return h
}

// Cancel suppresses a scheduled event of this domain. The slot is
// reclaimed lazily when the event's time is reached. Cancelling a
// fired-but-not-yet-recycled event is a no-op; cancelling through a
// stale handle (event already recycled) panics. Cancelling another
// domain's event is a context violation (the flag write would race
// with that domain's shard).
func (pr parProc) Cancel(h Handle) {
	ev := h.ev
	if ev == nil {
		return
	}
	h.checkGen()
	if ev.pooled {
		return // fired (or reclaimed) and not yet reused: no-op
	}
	ev.canceled = true
}

func (pr parProc) NewTicker(period Duration, fn func()) *Ticker {
	return newTicker(pr, period, fn)
}
