package sim

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"

	"speedlight/internal/telemetry"
)

// Parallel is the sharded implementation of Sim: a conservative
// parallel discrete-event engine. Domains (one per emulated switch)
// are partitioned across shards; each shard owns an event queue drained
// by one worker goroutine. Execution proceeds in null-message-free
// barrier rounds: with S the earliest pending shard event and L the
// lookahead (the minimum latency of any cross-shard interaction), every
// shard may safely execute all its events with time < S+L, because no
// event another shard produces during the round can land below that
// horizon. GlobalDomain events serialize: they run between rounds, on
// the coordinating goroutine, with every worker parked — the horizon
// never crosses a pending global event.
//
// Determinism. Event order within a shard follows the same
// (time, src, seq) key as the serial Engine; cross-shard events carry
// keys assigned by their (deterministic) scheduling domain, so merge
// order is independent of goroutine interleaving, GOMAXPROCS and shard
// count. A send between shards below the current horizon is a
// causality violation and panics — it means the configured lookahead
// exceeds the actual minimum cross-shard latency.
//
// Event pooling. Each shard (and the coordinator, via the global
// pseudo-shard) keeps its own event free list. An event is drawn from
// the scheduling context's pool — the worker's own shard during a
// round, any pool from the parked-coordinator context — and returned
// to the pool of whichever context pops it, so cross-shard events
// simply migrate between free lists. No pool is ever touched by two
// goroutines at once: workers only reach their own shard's pool, and
// the coordinator only runs while workers are parked.
//
// Context rules (the serial engine forgives these; this one does not):
// domain state must only be touched by its own domain's events or by
// GlobalDomain events; a domain's Proc must not be used from another
// (non-global) domain's events; Rand is driver/global-context only.
type Parallel struct {
	lookahead Duration
	now       Time // driver/global-context clock (low-water mark)
	horizon   Time // current round's exclusive bound, valid while roundActive
	// roundActive marks worker execution in flight. Written by the
	// coordinator strictly before dispatching and after joining a
	// round, so worker reads are ordered by the dispatch channel and
	// the barrier.
	roundActive bool
	domains     []pardom
	shards      []*pshard
	global      *pshard // GlobalDomain-owned events, run by the coordinator
	rng         *rand.Rand
	seedSrc     *rand.Rand
	fired       uint64 // events executed in global context
	wg          sync.WaitGroup
	workersUp   bool
	active      []*pshard // per-round scratch
	// wall is the injected wall-clock source for the barrier profiler
	// (nil = profiling disabled, zero cost). Virtual time cannot measure
	// barrier skew — shards at the same horizon burn different amounts
	// of real time — so this is the one place the engine reads a real
	// clock, and only through an injected func so the simulation itself
	// stays deterministic.
	wall func() int64
}

var _ Sim = (*Parallel)(nil)

// pardom is one domain's placement and schedule counter. The counter is
// only touched by the shard (or the parked-coordinator context)
// currently executing the domain; padding keeps neighboring domains'
// counters off one cache line.
type pardom struct {
	shard int32 // -1 = global
	seq   uint64
	_     [48]byte
}

// pshard is one shard: an event queue plus a mailbox for cross-shard
// arrivals, merged at barriers, plus the shard's event free list.
type pshard struct {
	q        evq
	pool     eventPool
	now      Time
	fired    uint64
	job      chan Time
	panicked any // panic captured by the worker, re-raised at the barrier

	mailMu sync.Mutex
	mail   []*Event
	spare  []*Event

	// Barrier profiling state. roundWorkNs is written by the shard's
	// worker during a round and read by the coordinator after the
	// barrier; the cumulative fields and cached counters are
	// coordinator-context only.
	roundWorkNs int64
	statRounds  uint64
	statWorkNs  int64
	statWaitNs  int64
	workC       *telemetry.Counter
	waitC       *telemetry.Counter
}

//speedlight:pool-transfer ev
func (sh *pshard) pushMail(ev *Event) {
	sh.mailMu.Lock()
	sh.mail = append(sh.mail, ev)
	sh.mailMu.Unlock()
}

// nextTime returns the shard's earliest live event time, recycling
// cancelled queue tops. Coordinator context only.
func (sh *pshard) nextTime() Time {
	for {
		ev := sh.q.peek()
		if ev == nil {
			return maxTime
		}
		if ev.canceled {
			sh.q.pop()
			sh.pool.put(ev)
			continue
		}
		return ev.at
	}
}

// NewParallel returns a sharded engine with the given worker shard
// count and conservative lookahead. The lookahead must not exceed the
// minimum virtual-time latency of any cross-shard interaction the
// simulation performs; larger values are detected at run time as
// causality violations. Randomness derives entirely from seed, exactly
// as in NewEngine.
func NewParallel(seed int64, shards int, lookahead Duration) *Parallel {
	if shards < 1 {
		shards = 1
	}
	if lookahead < 0 {
		lookahead = 0
	}
	p := &Parallel{
		lookahead: lookahead,
		rng:       rand.New(rand.NewSource(seed)),
		seedSrc:   rand.New(rand.NewSource(seed ^ 0x5eed_11a7)),
		global:    &pshard{q: newEvq()},
		shards:    make([]*pshard, shards),
		domains:   []pardom{{shard: -1}}, // GlobalDomain
	}
	for i := range p.shards {
		p.shards[i] = &pshard{q: newEvq()}
	}
	return p
}

// Shards returns the worker shard count.
func (p *Parallel) Shards() int { return len(p.shards) }

// Lookahead returns the configured conservative lookahead.
func (p *Parallel) Lookahead() Duration { return p.lookahead }

// Place assigns a domain to a shard. All placements must happen before
// the first Run* call; unplaced domains default to (domain-1) modulo
// the shard count. GlobalDomain cannot be placed.
func (p *Parallel) Place(domain, shard int) {
	if domain <= 0 {
		panic(fmt.Sprintf("sim: cannot place domain %d", domain))
	}
	if shard < 0 || shard >= len(p.shards) {
		panic(fmt.Sprintf("sim: shard %d out of range [0,%d)", shard, len(p.shards)))
	}
	p.ensureDomain(domain)
	p.domains[domain].shard = int32(shard)
}

func (p *Parallel) ensureDomain(domain int) {
	if p.roundActive {
		panic("sim: domain table grown during a round")
	}
	for len(p.domains) <= domain {
		d := len(p.domains)
		p.domains = append(p.domains, pardom{shard: int32((d - 1) % len(p.shards))})
	}
}

// Now returns the driver-context virtual time. It is only meaningful
// between Run* calls and inside GlobalDomain events; domain code must
// use its own Proc's Now.
func (p *Parallel) Now() Time { return p.now }

// Rand returns the engine's main random stream (driver/global-context
// only).
func (p *Parallel) Rand() *rand.Rand { return p.rng }

// NewRand returns a fresh stream seeded from the engine. Call it in a
// deterministic order (normally at build time) and use each stream from
// a single domain.
func (p *Parallel) NewRand() *rand.Rand {
	return rand.New(rand.NewSource(p.seedSrc.Int63()))
}

// EnableBarrierMetrics turns on the shard-barrier profiler. nowNs is
// the wall-clock source (normally telemetry.NowNs — the engine never
// reads a real clock directly, keeping the simulation deterministic by
// construction). When reg is non-nil the per-shard cumulative totals
// are also published as the counters speedlight_sim_round_work_ns and
// speedlight_sim_barrier_wait_ns, labeled by shard: work is the wall
// time a shard spent executing events inside barrier rounds, wait is
// the wall time it sat parked at the barrier while straggler shards
// finished — the direct diagnostic for shard-scaling plateaus. Call
// before the first Run*; not safe during a round.
func (p *Parallel) EnableBarrierMetrics(reg *telemetry.Registry, nowNs func() int64) {
	if nowNs == nil {
		return
	}
	p.wall = nowNs
	if reg == nil {
		return
	}
	workV := reg.CounterVec("speedlight_sim_round_work_ns",
		"Wall nanoseconds each shard spent executing events inside barrier rounds.",
		"shard")
	waitV := reg.CounterVec("speedlight_sim_barrier_wait_ns",
		"Wall nanoseconds each shard spent parked at the round barrier waiting for stragglers.",
		"shard")
	for i, sh := range p.shards {
		lbl := strconv.Itoa(i)
		sh.workC = workV.With(lbl)
		sh.waitC = waitV.With(lbl)
	}
}

// BarrierShardStats is one shard's cumulative barrier accounting.
type BarrierShardStats struct {
	Shard  int
	Rounds uint64 // rounds the shard was active in
	WorkNs int64  // wall time spent executing events
	WaitNs int64  // wall time spent waiting at the barrier
}

// BarrierProfile returns each shard's cumulative work/wait split.
// Driver context only; returns nil unless EnableBarrierMetrics was
// called.
func (p *Parallel) BarrierProfile() []BarrierShardStats {
	if p.wall == nil {
		return nil
	}
	stats := make([]BarrierShardStats, len(p.shards))
	for i, sh := range p.shards {
		stats[i] = BarrierShardStats{
			Shard: i, Rounds: sh.statRounds,
			WorkNs: sh.statWorkNs, WaitNs: sh.statWaitNs,
		}
	}
	return stats
}

// Fired returns the total number of events executed so far.
func (p *Parallel) Fired() uint64 {
	n := p.fired
	for _, sh := range p.shards {
		n += sh.fired
	}
	return n
}

// Pending returns the number of scheduled, uncancelled events.
func (p *Parallel) Pending() int {
	n := 0
	count := func(sh *pshard) {
		sh.q.forEach(func(ev *Event) {
			if !ev.canceled {
				n++
			}
		})
		sh.mailMu.Lock()
		n += len(sh.mail)
		sh.mailMu.Unlock()
	}
	count(p.global)
	for _, sh := range p.shards {
		count(sh)
	}
	return n
}

// Proc returns the scheduling handle of one domain.
func (p *Parallel) Proc(domain int) Proc {
	if domain < 0 {
		panic(fmt.Sprintf("sim: negative domain %d", domain))
	}
	p.ensureDomain(domain)
	return parProc{p: p, dom: domain}
}

// Schedule runs fn at virtual time at in the global domain.
func (p *Parallel) Schedule(at Time, fn func()) Handle {
	return parProc{p: p, dom: GlobalDomain}.Schedule(at, fn)
}

// After runs fn d after the current time in the global domain.
func (p *Parallel) After(d Duration, fn func()) Handle {
	return parProc{p: p, dom: GlobalDomain}.After(d, fn)
}

// Cancel suppresses a scheduled event. On the Parallel engine the slot
// is reclaimed lazily when the event's time is reached.
func (p *Parallel) Cancel(h Handle) {
	parProc{p: p, dom: GlobalDomain}.Cancel(h)
}

// NewTicker schedules fn every period in the global domain.
func (p *Parallel) NewTicker(period Duration, fn func()) *Ticker {
	return parProc{p: p, dom: GlobalDomain}.NewTicker(period, fn)
}

// Run executes events until none remain.
func (p *Parallel) Run() {
	p.run(maxTime)
	for _, sh := range p.shards {
		if sh.now > p.now {
			p.now = sh.now
		}
	}
}

// RunUntil executes events with time <= t, then sets the clock to t.
func (p *Parallel) RunUntil(t Time) {
	if t < maxTime {
		p.run(t + 1)
	} else {
		p.run(maxTime)
	}
	if p.now < t {
		p.now = t
	}
}

// RunFor advances the simulation by d from the current time.
func (p *Parallel) RunFor(d Duration) { p.RunUntil(p.now.Add(d)) }

// run is the coordinator loop: alternate serial global events and
// parallel shard rounds until no event below limit remains.
func (p *Parallel) run(limit Time) {
	defer p.stopWorkers()
	for {
		p.drainMail()
		g := p.global.nextTime()
		s := maxTime
		for _, sh := range p.shards {
			if t := sh.nextTime(); t < s {
				s = t
			}
		}
		next := g
		if s < next {
			next = s
		}
		if next >= limit {
			return
		}
		if g <= s {
			// Global events serialize: workers are parked, so the
			// event may touch any domain's state.
			ev := p.global.q.pop()
			if ev.canceled {
				p.global.pool.put(ev)
				continue
			}
			p.now = ev.at
			p.fired++
			ev.fire()
			p.global.pool.put(ev)
			continue
		}
		horizon := s.Add(p.lookahead)
		if horizon <= s {
			horizon = s + 1 // progress under zero lookahead (or overflow)
		}
		if g < horizon {
			horizon = g
		}
		if limit < horizon {
			horizon = limit
		}
		p.runRound(horizon)
	}
}

// runRound executes every shard's events below horizon, in parallel
// when more than one shard has work.
func (p *Parallel) runRound(horizon Time) {
	active := p.active[:0]
	for _, sh := range p.shards {
		if ev := sh.q.peek(); ev != nil && ev.at < horizon {
			active = append(active, sh)
		}
	}
	p.active = active
	p.horizon = horizon
	p.roundActive = true
	var t0 int64
	if p.wall != nil {
		t0 = p.wall()
	}
	if len(active) == 1 {
		// Single busy shard: run inline, skip the barrier round-trip.
		sh := active[0]
		p.process(sh, horizon)
		if p.wall != nil {
			sh.roundWorkNs = p.wall() - t0
		}
	} else {
		p.startWorkers()
		p.wg.Add(len(active))
		for _, sh := range active {
			sh.job <- horizon
		}
		p.wg.Wait()
	}
	p.roundActive = false
	if p.wall != nil {
		p.accountRound(p.wall()-t0, active)
	}
	// Re-raise worker panics on the coordinator so they reach the Run*
	// caller like a serial panic would. Lowest shard wins for a
	// deterministic message.
	for _, sh := range p.shards {
		if r := sh.panicked; r != nil {
			sh.panicked = nil
			panic(r)
		}
	}
}

// accountRound folds one round's wall-clock duration into each active
// shard's work/wait split: a shard's wait is the round's wall duration
// minus the time its own worker spent draining events. Coordinator
// context, after the barrier — the workers' roundWorkNs writes are
// ordered by wg.Wait.
func (p *Parallel) accountRound(roundNs int64, active []*pshard) {
	if roundNs < 0 {
		roundNs = 0
	}
	for _, sh := range active {
		work := sh.roundWorkNs
		sh.roundWorkNs = 0
		if work < 0 {
			work = 0
		}
		if work > roundNs {
			work = roundNs // clock skew between reader contexts
		}
		wait := roundNs - work
		sh.statRounds++
		sh.statWorkNs += work
		sh.statWaitNs += wait
		if sh.workC != nil {
			sh.workC.Add(uint64(work))
			sh.waitC.Add(uint64(wait))
		}
	}
}

// process drains one shard's events below horizon in (time, src, seq)
// order. Runs on the shard's worker during rounds (or inline on the
// coordinator when the shard is the only active one). Fired and
// cancelled events return to this shard's pool — the popping context
// owns the recycle.
//
//speedlight:hotpath
//speedlight:shard
func (p *Parallel) process(sh *pshard, horizon Time) {
	for {
		top := sh.q.peek()
		if top == nil || top.at >= horizon {
			break
		}
		sh.q.pop()
		if top.canceled {
			sh.pool.put(top)
			continue
		}
		sh.now = top.at
		sh.fired++
		top.fire()
		sh.pool.put(top)
	}
}

// drainMail merges cross-shard arrivals into their queues. Coordinator
// context only (workers parked).
func (p *Parallel) drainMail() {
	p.drainInto(p.global)
	for _, sh := range p.shards {
		p.drainInto(sh)
	}
}

func (p *Parallel) drainInto(sh *pshard) {
	sh.mailMu.Lock()
	mail := sh.mail
	sh.mail = sh.spare[:0]
	sh.spare = mail
	sh.mailMu.Unlock()
	for _, ev := range mail {
		sh.q.push(ev)
	}
}

func (p *Parallel) startWorkers() {
	if p.workersUp {
		return
	}
	p.workersUp = true
	for _, sh := range p.shards {
		// The worker receives the channel as an argument: a retired
		// worker from a previous Run* call may not have executed its
		// first instruction yet, so it must never load the job field
		// the next generation's startWorkers is about to overwrite.
		job := make(chan Time, 1)
		sh.job = job
		go func(sh *pshard, job chan Time) {
			for h := range job {
				func() {
					defer func() {
						if r := recover(); r != nil {
							sh.panicked = r
						}
						p.wg.Done()
					}()
					if p.wall != nil {
						t := p.wall()
						p.process(sh, h)
						sh.roundWorkNs = p.wall() - t
					} else {
						p.process(sh, h)
					}
				}()
			}
		}(sh, job)
	}
}

// stopWorkers retires the round workers at the end of each Run* call,
// so an idle engine holds no goroutines.
func (p *Parallel) stopWorkers() {
	if !p.workersUp {
		return
	}
	p.workersUp = false
	for _, sh := range p.shards {
		close(sh.job)
	}
}

// parProc is one domain's scheduling handle on the Parallel engine.
type parProc struct {
	p   *Parallel
	dom int
}

func (pr parProc) Domain() int { return pr.dom }

// Now returns the domain's shard-local clock during rounds and the
// global clock otherwise (driver context, or a GlobalDomain event
// executing with workers parked).
func (pr parProc) Now() Time {
	p := pr.p
	if p.roundActive {
		if sh := p.shardOf(pr.dom); sh != nil {
			return sh.now
		}
	}
	return p.now
}

func (p *Parallel) shardOf(dom int) *pshard {
	if s := p.domains[dom].shard; s >= 0 {
		return p.shards[s]
	}
	return nil
}

func (pr parProc) Schedule(at Time, fn func()) Handle {
	return pr.sendAt(pr.dom, at, fn, nil, nil, nil, 0)
}

func (pr parProc) After(d Duration, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return pr.sendAt(pr.dom, pr.Now().Add(d), fn, nil, nil, nil, 0)
}

func (pr parProc) Send(owner int, d Duration, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return pr.sendAt(owner, pr.Now().Add(d), fn, nil, nil, nil, 0)
}

func (pr parProc) SendAt(owner int, at Time, fn func()) Handle {
	return pr.sendAt(owner, at, fn, nil, nil, nil, 0)
}

func (pr parProc) ScheduleCall(at Time, fn CallFn, a, b any, i int64) Handle {
	return pr.sendAt(pr.dom, at, nil, fn, a, b, i)
}

func (pr parProc) AfterCall(d Duration, fn CallFn, a, b any, i int64) Handle {
	if d < 0 {
		d = 0
	}
	return pr.sendAt(pr.dom, pr.Now().Add(d), nil, fn, a, b, i)
}

func (pr parProc) SendCall(owner int, d Duration, fn CallFn, a, b any, i int64) Handle {
	if d < 0 {
		d = 0
	}
	return pr.sendAt(owner, pr.Now().Add(d), nil, fn, a, b, i)
}

// sendAt schedules a callback in domain owner at time at, keyed by this
// domain's schedule counter. The event comes from the scheduling
// context's free list: the worker's own shard pool during a round
// (workers never reach another shard's pool), or — from driver/global
// context, with every worker parked — the scheduling domain's home
// pool.
//
//speedlight:hotpath
func (pr parProc) sendAt(owner int, at Time, fn func(), cfn CallFn, a, b any, i int64) Handle {
	p := pr.p
	if owner < 0 || owner >= len(p.domains) {
		panic(fmt.Sprintf("sim: send to unknown domain %d", owner))
	}
	ds := &p.domains[pr.dom]
	src := ds.shard
	home := p.global
	if src >= 0 {
		home = p.shards[src]
	}
	ev := home.pool.get()
	ev.at = at
	ev.src = int32(pr.dom)
	ev.seq = ds.seq
	ev.owner = int32(owner)
	ev.fn = fn
	ev.cfn = cfn
	ev.a = a
	ev.b = b
	ev.i = i
	ds.seq++
	h := Handle{ev: ev, gen: ev.gen}
	tgt := p.domains[owner].shard
	if !p.roundActive {
		// Coordinator or driver context: workers are parked, push
		// straight into the owning queue.
		if at < p.now {
			panic(fmt.Sprintf("sim: schedule at %d before now %d", at, p.now))
		}
		dst := p.global
		if tgt >= 0 {
			dst = p.shards[tgt]
		}
		dst.q.push(ev)
		return h
	}
	if src < 0 {
		panic("sim: GlobalDomain proc used inside a shard round")
	}
	sh := p.shards[src]
	if at < sh.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", at, sh.now))
	}
	switch {
	case tgt == src:
		sh.q.push(ev)
	case tgt < 0:
		// To the global domain: executes at the next barrier at the
		// correct position of the global order.
		p.global.pushMail(ev)
	default:
		if at < p.horizon {
			panic(fmt.Sprintf(
				"sim: causality violation: cross-shard send at %d inside round horizon %d (lookahead %d exceeds the minimum cross-shard latency)",
				at, p.horizon, p.lookahead))
		}
		p.shards[tgt].pushMail(ev)
	}
	return h
}

// Cancel suppresses a scheduled event of this domain. The slot is
// reclaimed lazily when the event's time is reached. Cancelling a
// fired-but-not-yet-recycled event is a no-op; cancelling through a
// stale handle (event already recycled) panics. Cancelling another
// domain's event is a context violation (the flag write would race
// with that domain's shard).
func (pr parProc) Cancel(h Handle) {
	ev := h.ev
	if ev == nil {
		return
	}
	h.checkGen()
	if ev.pooled {
		return // fired (or reclaimed) and not yet reused: no-op
	}
	ev.canceled = true
}

func (pr parProc) NewTicker(period Duration, fn func()) *Ticker {
	return newTicker(pr, period, fn)
}
