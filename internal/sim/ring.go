package sim

import "sync/atomic"

// evRing is a bounded single-producer single-consumer lock-free ring of
// pooled events: the cross-shard handoff channel of the Parallel
// engine. One goroutine may push and one may pop at any moment; the
// roles themselves migrate between contexts (a shard's worker produces
// during an epoch, the coordinator drains the residue after the
// barrier), with every role change ordered by the epoch barrier.
//
// The protocol generalizes the journal's chunked write-once-cell trick:
// each slot is written exactly once per lap by the producer and the
// publication order is carried entirely by the tail index. The producer
// writes the slot, then release-stores tail; the consumer
// acquire-loads tail, reads the slot, then release-stores head, which
// is what licenses the producer to reuse the slot a lap later. Both
// sides keep a plain-field cache of the opposite index so the steady
// state costs one atomic store per operation.
//
// Capacity is fixed at construction and rounded up to a power of two so
// the index math is a mask. A full ring never blocks in here: tryPush
// reports failure and the caller decides how to shed (the engine drains
// its own inbound rings while it waits, which is what makes the
// backpressure graph deadlock-free).
type evRing struct {
	slots []*Event
	mask  uint64

	_    [64]byte // keep the two contended indexes on separate lines
	head atomic.Uint64
	// cachedTail is consumer-owned: the last tail value the consumer
	// observed, refreshed only when the ring looks empty.
	cachedTail uint64

	_    [40]byte
	tail atomic.Uint64
	// cachedHead is producer-owned: the last head value the producer
	// observed, refreshed only when the ring looks full.
	cachedHead uint64

	_ [40]byte
}

// newEvRing returns a ring with capacity at least n slots.
func newEvRing(n int) *evRing {
	c := 2
	for c < n {
		c <<= 1
	}
	return &evRing{slots: make([]*Event, c), mask: uint64(c - 1)}
}

// tryPush appends ev, or reports false if the ring is full. Producer
// context only. On success the event's ownership transfers through the
// cell to whichever context pops it; on failure it stays with the
// caller (which is why this is a pool-transfer-cell, not a plain
// pool-transfer: the caller's retry/stash loop owns the obligation).
//
//speedlight:hotpath
//speedlight:pool-transfer-cell ev
func (r *evRing) tryPush(ev *Event) bool {
	t := r.tail.Load()
	if t-r.cachedHead >= uint64(len(r.slots)) {
		r.cachedHead = r.head.Load()
		if t-r.cachedHead >= uint64(len(r.slots)) {
			return false
		}
	}
	r.slots[t&r.mask] = ev
	r.tail.Store(t + 1)
	return true
}

// tryPop removes the oldest event, or returns nil if the ring is
// empty. Consumer context only.
//
//speedlight:hotpath
func (r *evRing) tryPop() *Event {
	h := r.head.Load()
	if h == r.cachedTail {
		r.cachedTail = r.tail.Load()
		if h == r.cachedTail {
			return nil
		}
	}
	ev := r.slots[h&r.mask]
	r.slots[h&r.mask] = nil
	r.head.Store(h + 1)
	return ev
}

// empty reports whether the ring held no events at the observation
// instant. Safe from any context, but only a snapshot.
func (r *evRing) empty() bool {
	return r.head.Load() == r.tail.Load()
}
