package sim

import (
	"strings"
	"sync/atomic"
	"testing"

	"speedlight/internal/telemetry"
)

// fakeClock is a deterministic, goroutine-safe wall-clock stand-in:
// every read advances it by a fixed step, so any timed region measures
// a positive duration without the test depending on real time.
func fakeClock() func() int64 {
	var t int64
	return func() int64 { return atomic.AddInt64(&t, 1000) }
}

func TestBarrierProfileDisabledByDefault(t *testing.T) {
	p := NewParallel(1, 4, 100)
	runScenario(p, 6, 100)
	if prof := p.BarrierProfile(); prof != nil {
		t.Fatalf("profile without EnableBarrierMetrics = %+v, want nil", prof)
	}
}

func TestBarrierProfileAccountsRounds(t *testing.T) {
	p := NewParallel(7, 4, 100)
	reg := telemetry.NewRegistry()
	p.EnableBarrierMetrics(reg, fakeClock())
	runScenario(p, 9, 100)

	prof := p.BarrierProfile()
	if len(prof) != 4 {
		t.Fatalf("profile has %d shards, want 4", len(prof))
	}
	var rounds uint64
	var work, wait int64
	for i, st := range prof {
		if st.Shard != i {
			t.Errorf("profile[%d].Shard = %d", i, st.Shard)
		}
		if st.WorkNs < 0 || st.WaitNs < 0 {
			t.Errorf("shard %d negative accounting: %+v", i, st)
		}
		rounds += st.Rounds
		work += st.WorkNs
		wait += st.WaitNs
	}
	if rounds == 0 {
		t.Fatal("no rounds accounted")
	}
	if work == 0 {
		t.Fatal("no work time accounted")
	}
	// The fake clock gives multi-shard rounds a longer wall duration
	// than any single worker's slice, so some wait must appear.
	if wait == 0 {
		t.Fatal("no barrier wait accounted")
	}

	var haveWork, haveWait bool
	for _, s := range reg.Gather() {
		if strings.HasPrefix(s.FullName(), "speedlight_sim_round_work_ns{") && s.Value > 0 {
			haveWork = true
		}
		if strings.HasPrefix(s.FullName(), "speedlight_sim_barrier_wait_ns{") && s.Value > 0 {
			haveWait = true
		}
	}
	if !haveWork || !haveWait {
		t.Fatalf("registry missing barrier counters (work=%v wait=%v)", haveWork, haveWait)
	}
}

// TestBarrierMetricsPreserveDeterminism: the profiler observes the
// engine but must not perturb it — the event log with metrics enabled
// is byte-identical to the serial reference.
func TestBarrierMetricsPreserveDeterminism(t *testing.T) {
	const domains = 9
	const seed = 77
	const lookahead = Duration(100)
	ref := formatRecords(runScenario(NewEngine(seed), domains, lookahead))
	p := NewParallel(seed, 4, lookahead)
	p.EnableBarrierMetrics(telemetry.NewRegistry(), fakeClock())
	if got := formatRecords(runScenario(p, domains, lookahead)); got != ref {
		t.Fatal("event log diverges from serial when barrier metrics are on")
	}
}
