package sim

import (
	"strings"
	"testing"
)

// TestStaleHandleCancelPanics: once an event has fired AND its object
// has been recycled for a new schedule, cancelling through the old
// handle is a use-after-free and must panic with a clear message — not
// silently cancel the new tenant.
func TestStaleHandleCancelPanics(t *testing.T) {
	e := NewEngine(1)
	h1 := e.Schedule(10, func() {})
	e.Run() // fires; the event returns to the free list
	// The free list has exactly one event; this schedule recycles it.
	h2 := e.Schedule(20, func() {})
	if h1.ev != h2.ev {
		t.Fatal("free list did not recycle the fired event (test setup)")
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Cancel through a stale handle did not panic")
		}
		if !strings.Contains(r.(string), "stale Handle") {
			t.Fatalf("panic message %q does not name the stale handle", r)
		}
	}()
	e.Cancel(h1)
}

// TestStaleHandleCancelPanicsParallel: same contract on the sharded
// engine (where reclamation is lazy for in-queue cancels but eager at
// pop time).
func TestStaleHandleCancelPanicsParallel(t *testing.T) {
	p := NewParallel(1, 2, 10)
	pr := p.Proc(1)
	h1 := pr.Schedule(10, func() {})
	p.RunUntil(50)
	h2 := pr.Schedule(60, func() {})
	if h1.ev != h2.ev {
		t.Fatal("shard free list did not recycle the fired event (test setup)")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Cancel through a stale handle did not panic on Parallel")
		}
	}()
	pr.Cancel(h1)
}

// TestCancelRecyclesEagerly: on the serial engine a cancelled in-queue
// event is unlinked and recycled immediately, so the very next schedule
// reuses its object (and the cancelled handle goes stale).
func TestCancelRecyclesEagerly(t *testing.T) {
	e := NewEngine(1)
	h1 := e.Schedule(10, func() { t.Error("cancelled event fired") })
	e.Cancel(h1)
	h2 := e.Schedule(20, func() {})
	if h1.ev != h2.ev {
		t.Error("cancelled event was not recycled eagerly")
	}
	e.Run()
}

// TestPooledSchedulingAllocs: steady-state closure-free scheduling —
// AfterCall with a package-level callback plus the event pop — must not
// allocate. This is the engine half of the zero-allocation hot-path
// contract (the emunet half is gated in the emulation's own tests).
//
//speedlight:allocgate sim.Engine.schedule sim.Engine.Step sim.Event.fire sim.eventPool.get sim.eventPool.put
//speedlight:allocgate sim.evq.push sim.evq.pop sim.evq.peek
func TestPooledSchedulingAllocs(t *testing.T) {
	e := NewEngine(1)
	p := e.Proc(GlobalDomain)
	var sink int64
	fn := CallFn(func(_, _ any, i int64) { sink += i })
	// Warm the pool and the per-domain counter table.
	for i := 0; i < 64; i++ {
		p.AfterCall(1, fn, nil, nil, 1)
	}
	e.Run()
	avg := testing.AllocsPerRun(1000, func() {
		p.AfterCall(1, fn, nil, nil, 1)
		e.Step()
	})
	if avg != 0 {
		t.Errorf("pooled AfterCall+Step allocates %v allocs/op, want 0", avg)
	}
	_ = sink
}

// TestTickerSteadyStateAllocs: a running ticker re-arms through the
// pooled closure-free path, so steady-state ticks allocate nothing.
//
//speedlight:allocgate sim.Ticker.arm
func TestTickerSteadyStateAllocs(t *testing.T) {
	e := NewEngine(1)
	ticks := 0
	e.NewTicker(10, func() { ticks++ })
	e.RunUntil(100) // warm-up: pool populated
	avg := testing.AllocsPerRun(500, func() {
		e.RunFor(10)
	})
	if avg != 0 {
		t.Errorf("steady-state ticker tick allocates %v allocs/op, want 0", avg)
	}
	if ticks == 0 {
		t.Fatal("ticker never fired")
	}
}

// withCalendarQueue runs f with the opt-in calendar queue enabled.
func withCalendarQueue(t *testing.T, f func()) {
	t.Helper()
	CalendarQueue = true
	defer func() { CalendarQueue = false }()
	f()
}

// TestCalendarQueueEquivalence: the opt-in calendar queue realizes the
// same (time, src, seq) total order as the binary heap, so the full
// random scenario produces a byte-identical record log on both queue
// types, serial and sharded.
func TestCalendarQueueEquivalence(t *testing.T) {
	ref := formatRecords(runScenario(NewEngine(11), 4, 100))
	refPar := formatRecords(runScenario(NewParallel(11, 4, 100), 4, 100))
	if ref != refPar {
		t.Fatal("heap-backed serial and parallel diverge (pre-existing)")
	}
	withCalendarQueue(t, func() {
		if got := formatRecords(runScenario(NewEngine(11), 4, 100)); got != ref {
			t.Error("calendar-queue serial engine diverges from heap-backed run")
		}
		if got := formatRecords(runScenario(NewParallel(11, 4, 100), 4, 100)); got != ref {
			t.Error("calendar-queue parallel engine diverges from heap-backed run")
		}
	})
}

// TestCalendarQueueSparse: events far beyond one bucket ring "year"
// (2ms of virtual time) exercise the sparse fallback scan.
func TestCalendarQueueSparse(t *testing.T) {
	withCalendarQueue(t, func() {
		e := NewEngine(1)
		var fired []Time
		for _, at := range []Time{5, 3 * Time(Millisecond), 10 * Time(Second), 7} {
			at := at
			e.Schedule(at, func() { fired = append(fired, at) })
		}
		e.Run()
		want := []Time{5, 7, 3 * Time(Millisecond), 10 * Time(Second)}
		for i := range want {
			if fired[i] != want[i] {
				t.Fatalf("fired = %v, want %v", fired, want)
			}
		}
	})
}

// TestCalendarQueueCancel: eager cancel unlinks from the right bucket.
func TestCalendarQueueCancel(t *testing.T) {
	withCalendarQueue(t, func() {
		e := NewEngine(1)
		fired := false
		h := e.Schedule(10*Time(Millisecond), func() { fired = true })
		e.Schedule(20, func() {})
		e.Cancel(h)
		e.Run()
		if fired {
			t.Error("cancelled event fired")
		}
		if e.Pending() != 0 {
			t.Errorf("Pending = %d, want 0", e.Pending())
		}
	})
}

// BenchmarkEventQueue prices the two queue implementations against each
// other on a churning hold-model workload (the pattern emulation
// produces: pop the minimum, push a successor a short latency out).
func BenchmarkEventQueue(b *testing.B) {
	for _, impl := range []struct {
		name string
		cal  bool
	}{{"heap", false}, {"calendar", true}} {
		b.Run(impl.name, func(b *testing.B) {
			CalendarQueue = impl.cal
			defer func() { CalendarQueue = false }()
			e := NewEngine(1)
			p := e.Proc(GlobalDomain)
			r := e.NewRand()
			var churn CallFn
			churn = func(_, _ any, _ int64) {
				p.AfterCall(Duration(1+r.Intn(2000)), churn, nil, nil, 0)
			}
			// 512 concurrent event chains approximates a busy fabric.
			for i := 0; i < 512; i++ {
				p.AfterCall(Duration(1+r.Intn(2000)), churn, nil, nil, 0)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
		})
	}
}
