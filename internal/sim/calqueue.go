package sim

import "container/heap"

// This file holds the engines' pending-event queue. The default is the
// classic binary heap (eventHeap); an opt-in bucketed calendar queue
// (Brown, CACM 1988) can be selected instead via CalendarQueue. Both
// are priority queues over the identical total order (time, src, seq),
// so pop sequences — and therefore journals, audits and snapshots —
// are byte-identical whichever queue an engine uses; only the constant
// factors differ. BenchmarkShardScaling and BenchmarkEventQueue price
// the two against each other; the heap remains the default because it
// wins on the emulation workloads (see DESIGN.md, "Memory management
// and hot paths").

// CalendarQueue, when set, makes engines constructed afterwards use the
// bucketed calendar queue instead of the binary event heap. It is a
// construction-time choice: flipping it does not affect engines that
// already exist. Because both queues realize the same total order, the
// choice is invisible to determinism — it is purely a performance
// experiment knob.
var CalendarQueue = false

// evq is one execution context's pending-event queue: a binary heap by
// default, or the opt-in calendar queue. The two-field struct (instead
// of an interface) keeps dispatch a predictable nil check on the hot
// path rather than a dynamic call.
type evq struct {
	h   eventHeap
	cal *calQueue
}

func newEvq() evq {
	if CalendarQueue {
		return evq{cal: newCalQueue()}
	}
	return evq{}
}

//speedlight:hotpath
//speedlight:pool-transfer ev
func (q *evq) push(ev *Event) {
	if q.cal != nil {
		q.cal.push(ev)
		return
	}
	heap.Push(&q.h, ev)
}

// pop removes and returns the earliest event (cancelled or not), or nil
// when the queue is empty.
//
//speedlight:hotpath
func (q *evq) pop() *Event {
	if q.cal != nil {
		return q.cal.pop()
	}
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*Event)
}

// peek returns the earliest event without removing it, or nil.
//
//speedlight:hotpath
func (q *evq) peek() *Event {
	if q.cal != nil {
		return q.cal.peek()
	}
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

// remove unlinks an event that is currently queued (ev.index >= 0).
func (q *evq) remove(ev *Event) {
	if q.cal != nil {
		q.cal.remove(ev)
		return
	}
	heap.Remove(&q.h, ev.index)
}

func (q *evq) len() int {
	if q.cal != nil {
		return q.cal.size
	}
	return len(q.h)
}

func (q *evq) forEach(f func(*Event)) {
	if q.cal != nil {
		for i := range q.cal.buckets {
			for _, ev := range q.cal.buckets[i] {
				f(ev)
			}
		}
		return
	}
	for _, ev := range q.h {
		f(ev)
	}
}

// Calendar-queue geometry. Bucket width 2^calShift virtual nanoseconds
// (2.048 µs — the scale of link latencies and serialization delays in
// the emulation workloads), calBuckets buckets, so one "year" spans
// ~2 ms of virtual time.
const (
	calShift   = 11
	calBuckets = 1024
	calWidth   = Time(1) << calShift
)

// calQueue is a bucketed calendar queue: events hash by time into a
// ring of buckets, each bucket a small binary heap in the engines'
// (time, src, seq) order. Pops scan forward from the last popped time,
// accepting a bucket's top only when it falls inside the bucket's
// current year window; a fruitless full-year scan falls back to a
// direct minimum search (the sparse regime).
//
// Correctness relies on the engines' no-scheduling-in-the-past rule:
// every push is at or after the last popped time, so the scan cursor
// (curT, which only advances to popped event times) never passes a
// pending or future event.
type calQueue struct {
	buckets []eventHeap
	size    int
	curT    Time // last popped event time: the scan's lower bound
}

func newCalQueue() *calQueue {
	return &calQueue{buckets: make([]eventHeap, calBuckets)}
}

func calBucket(at Time) int {
	return int((uint64(at) >> calShift) & (calBuckets - 1))
}

//speedlight:hotpath
//speedlight:pool-transfer ev
func (c *calQueue) push(ev *Event) {
	heap.Push(&c.buckets[calBucket(ev.at)], ev)
	c.size++
}

//speedlight:hotpath
func (c *calQueue) pop() *Event {
	ev := c.scan()
	if ev == nil {
		return nil
	}
	heap.Remove(&c.buckets[calBucket(ev.at)], ev.index)
	c.size--
	c.curT = ev.at
	return ev
}

//speedlight:hotpath
func (c *calQueue) peek() *Event { return c.scan() }

// scan locates the minimum event without removing it.
func (c *calQueue) scan() *Event {
	if c.size == 0 {
		return nil
	}
	// Walk bucket windows forward from the last popped time; the first
	// top that falls inside its window is the global minimum, because
	// every earlier window has been scanned empty.
	t := c.curT
	for i := 0; i < calBuckets; i++ {
		h := c.buckets[calBucket(t)]
		winEnd := (t >> calShift << calShift) + calWidth
		if len(h) > 0 && h[0].at < winEnd {
			return h[0]
		}
		t = winEnd
	}
	// Sparse regime: nothing within a full year of curT. Direct search.
	var best *Event
	for i := range c.buckets {
		h := c.buckets[i]
		if len(h) > 0 && (best == nil || eventLess(h[0], best)) {
			best = h[0]
		}
	}
	return best
}

// remove unlinks a queued event (ev.index >= 0 within its bucket).
func (c *calQueue) remove(ev *Event) {
	heap.Remove(&c.buckets[calBucket(ev.at)], ev.index)
	c.size--
}
