package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"testing"
)

// simRecord is one observation a scenario domain makes of itself. The
// merge key (at, dom, idx) mirrors the engine's (time, src, seq)
// determinism key, so two runs match iff they executed the same events
// at the same times in the same per-domain order.
type simRecord struct {
	at  Time
	dom int
	idx int
	val int64
}

// scenarioNode is one domain of the equivalence workload: a bit of
// private state driven only by its own events (plus serialized global
// events), exactly the discipline emunet switches follow.
type scenarioNode struct {
	proc Proc
	rng  *rand.Rand
	log  []simRecord
	seen int64
}

func (n *scenarioNode) record(val int64) {
	n.log = append(n.log, simRecord{at: n.proc.Now(), dom: n.proc.Domain(), idx: len(n.log), val: val})
}

// runScenario drives a mixed workload — intra-domain chains, random
// cross-domain sends with latency >= minLatency, domain->global
// reports, and a global ticker that reads every domain — and returns
// the deterministic merged log.
func runScenario(eng Sim, domains int, minLatency Duration) []simRecord {
	nodes := make([]*scenarioNode, domains+1)
	for d := 1; d <= domains; d++ {
		nodes[d] = &scenarioNode{proc: eng.Proc(d), rng: eng.NewRand()}
	}
	global := &scenarioNode{proc: eng.Proc(GlobalDomain), rng: eng.NewRand()}
	nodes[GlobalDomain] = global

	var hop func(n *scenarioNode, ttl int)
	hop = func(n *scenarioNode, ttl int) {
		n.seen++
		n.record(n.seen)
		if ttl <= 0 {
			return
		}
		tgt := 1 + n.rng.Intn(domains)
		delay := minLatency + Duration(n.rng.Intn(500))
		if tgt == n.proc.Domain() {
			n.proc.After(Duration(1+n.rng.Intn(200)), func() { hop(n, ttl-1) })
			return
		}
		m := nodes[tgt]
		n.proc.Send(tgt, delay, func() { hop(m, ttl-1) })
		if n.seen%5 == 0 {
			v := n.seen
			n.proc.Send(GlobalDomain, delay, func() { global.record(v) })
		}
	}
	for d := 1; d <= domains; d++ {
		n := nodes[d]
		eng.Proc(GlobalDomain).SendAt(d, Time(d), func() { hop(n, 60) })
	}
	tk := global.proc.NewTicker(700, func() {
		var sum int64
		for d := 1; d <= domains; d++ {
			sum += nodes[d].seen
		}
		global.record(sum)
	})
	eng.RunUntil(40_000)
	tk.Stop()
	eng.Run()

	var out []simRecord
	for _, n := range nodes {
		out = append(out, n.log...)
	}
	sort.Slice(out, func(a, b int) bool {
		x, y := out[a], out[b]
		if x.at != y.at {
			return x.at < y.at
		}
		if x.dom != y.dom {
			return x.dom < y.dom
		}
		return x.idx < y.idx
	})
	return out
}

func formatRecords(recs []simRecord) string {
	var sb strings.Builder
	for _, r := range recs {
		fmt.Fprintf(&sb, "%d/%d/%d=%d\n", r.at, r.dom, r.idx, r.val)
	}
	return sb.String()
}

// TestParallelMatchesSerial: the same seed must produce an identical
// event log on the serial engine and on the parallel engine at every
// shard count and GOMAXPROCS — the engine-level version of the
// conformance contract.
func TestParallelMatchesSerial(t *testing.T) {
	const domains = 9
	const seed = 77
	const lookahead = 100 * Nanosecond
	ref := formatRecords(runScenario(NewEngine(seed), domains, Duration(lookahead)))
	if len(ref) == 0 {
		t.Fatal("scenario produced no records")
	}
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		for _, shards := range []int{1, 2, 3, 4, 8} {
			p := NewParallel(seed, shards, Duration(lookahead))
			got := formatRecords(runScenario(p, domains, Duration(lookahead)))
			if got != ref {
				t.Errorf("shards=%d GOMAXPROCS=%d: log diverges from serial", shards, procs)
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}

// TestParallelFiredNowParity: aggregate engine accounting must match
// the serial reference too.
func TestParallelFiredNowParity(t *testing.T) {
	const lookahead = 100
	e := NewEngine(3)
	runScenario(e, 5, lookahead)
	p := NewParallel(3, 4, lookahead)
	runScenario(p, 5, lookahead)
	if e.Fired() != p.Fired() {
		t.Errorf("Fired: serial %d, parallel %d", e.Fired(), p.Fired())
	}
	if e.Now() != p.Now() {
		t.Errorf("Now: serial %d, parallel %d", e.Now(), p.Now())
	}
	if p.Pending() != 0 || e.Pending() != 0 {
		t.Errorf("Pending: serial %d, parallel %d, want 0", e.Pending(), p.Pending())
	}
}

// TestParallelExplicitPlacement: Place must pin domains to shards and
// still produce the reference log.
func TestParallelExplicitPlacement(t *testing.T) {
	const domains = 6
	const lookahead = 100
	ref := formatRecords(runScenario(NewEngine(11), domains, lookahead))
	p := NewParallel(11, 3, lookahead)
	for d := 1; d <= domains; d++ {
		p.Place(d, (d*d)%3) // scrambled, non-default placement
	}
	if got := formatRecords(runScenario(p, domains, lookahead)); got != ref {
		t.Error("explicit placement diverges from serial")
	}
}

// TestParallelZeroLookahead: degenerate lookahead still terminates and
// matches the serial order (rounds collapse to single-timestamp width).
func TestParallelZeroLookahead(t *testing.T) {
	ref := formatRecords(runScenario(NewEngine(5), 4, 1))
	got := formatRecords(runScenario(NewParallel(5, 2, 0), 4, 1))
	if got != ref {
		t.Error("zero-lookahead run diverges from serial")
	}
}

// TestParallelCausalityPanic: a cross-shard send below the round
// horizon must panic — it means the configured lookahead overstates the
// real minimum cross-shard latency.
func TestParallelCausalityPanic(t *testing.T) {
	p := NewParallel(1, 2, 1000)
	p.Place(1, 0)
	p.Place(2, 1)
	pr1, pr2 := p.Proc(1), p.Proc(2)
	// Both shards have work below the horizon, so the round spans both;
	// domain 1 then violates the 1000-tick lookahead promise.
	pr2.Schedule(40, func() {})
	pr1.Schedule(50, func() {
		pr1.Send(2, 10, func() {})
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("cross-shard send inside the horizon did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "causality violation") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	p.Run()
}

// TestParallelGlobalProcInRoundPanics: using the GlobalDomain proc from
// inside a shard round is a context violation.
func TestParallelGlobalProcInRoundPanics(t *testing.T) {
	p := NewParallel(1, 2, 10)
	g := p.Proc(GlobalDomain)
	p.Proc(1).Schedule(5, func() {
		g.Schedule(100, func() {})
	})
	defer func() {
		if recover() == nil {
			t.Fatal("GlobalDomain proc inside a round did not panic")
		}
	}()
	p.Run()
}

// TestParallelPlaceValidation exercises the placement guards.
func TestParallelPlaceValidation(t *testing.T) {
	p := NewParallel(1, 2, 10)
	for _, tc := range []struct {
		name          string
		domain, shard int
	}{
		{"global domain", 0, 0},
		{"negative domain", -1, 0},
		{"shard out of range", 1, 2},
		{"negative shard", 1, -1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("Place(%d, %d) did not panic", tc.domain, tc.shard)
				}
			}()
			p.Place(tc.domain, tc.shard)
		})
	}
}

// TestParallelRunUntilIdle: RunUntil on an empty parallel engine still
// advances the clock, and boundary events fire exactly like the serial
// engine's.
func TestParallelRunUntilIdle(t *testing.T) {
	p := NewParallel(1, 2, 10)
	p.RunUntil(500)
	if p.Now() != 500 {
		t.Errorf("Now = %d, want 500", p.Now())
	}
	var fired []Time
	p.Proc(1).Schedule(600, func() { fired = append(fired, 600) })
	p.Proc(2).Schedule(601, func() { fired = append(fired, 601) })
	p.RunUntil(600) // boundary event fires, later one does not
	if len(fired) != 1 || fired[0] != 600 {
		t.Errorf("fired = %v, want [600]", fired)
	}
	if p.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", p.Pending())
	}
	p.RunFor(1)
	if len(fired) != 2 {
		t.Errorf("boundary event at 601 did not fire: %v", fired)
	}
}

// TestParallelCancelCrossRound: events cancelled from their own domain
// before their time never fire, even when scheduled cross-shard.
func TestParallelCancelCrossRound(t *testing.T) {
	p := NewParallel(1, 2, 50)
	fired := false
	pr1, pr2 := p.Proc(1), p.Proc(2)
	var ev Handle
	pr2.Schedule(10, func() {
		ev = pr2.After(500, func() { fired = true })
	})
	pr1.Schedule(100, func() {}) // keep both shards busy
	p.RunUntil(200)
	pr2.Cancel(ev) // driver context: workers parked
	p.Run()
	if fired {
		t.Error("cancelled cross-round event fired")
	}
	if p.Pending() != 0 {
		t.Errorf("Pending = %d after run, want 0", p.Pending())
	}
}

// TestParallelManyShardsFewDomains: more shards than domains must not
// deadlock or misorder (some shards simply stay idle).
func TestParallelManyShardsFewDomains(t *testing.T) {
	ref := formatRecords(runScenario(NewEngine(9), 2, 100))
	got := formatRecords(runScenario(NewParallel(9, 8, 100), 2, 100))
	if got != ref {
		t.Error("8 shards / 2 domains diverges from serial")
	}
}
