package analysis

import (
	"math"
	"testing"

	"speedlight/internal/control"
	"speedlight/internal/dataplane"
	"speedlight/internal/observer"
	"speedlight/internal/packet"
	"speedlight/internal/sim"
)

func unit(port int) dataplane.UnitID {
	return dataplane.UnitID{Node: 0, Port: port, Dir: dataplane.Egress}
}

// snap builds a snapshot with the given per-port values at a schedule
// time.
func snap(id packet.SeqID, at sim.Time, values map[int]uint64, inconsistent ...int) *observer.GlobalSnapshot {
	g := &observer.GlobalSnapshot{
		ID:          id,
		Results:     map[dataplane.UnitID]control.Result{},
		ScheduledAt: at,
	}
	bad := map[int]bool{}
	for _, p := range inconsistent {
		bad[p] = true
	}
	for p, v := range values {
		g.Results[unit(p)] = control.Result{
			Unit: unit(p), SnapshotID: id, Value: v, Consistent: !bad[p],
		}
	}
	return g
}

func TestUnitSeriesAlignedAndOrdered(t *testing.T) {
	snaps := []*observer.GlobalSnapshot{
		snap(2, 200, map[int]uint64{0: 20, 1: 21}),
		snap(1, 100, map[int]uint64{0: 10, 1: 11}),
		snap(3, 300, map[int]uint64{0: 30}),           // unit 1 missing: skipped
		snap(4, 400, map[int]uint64{0: 40, 1: 41}, 1), // unit 1 inconsistent: skipped
		snap(5, 500, map[int]uint64{0: 50, 1: 51}),
	}
	series := UnitSeries(snaps, []dataplane.UnitID{unit(0), unit(1)})
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	want0 := []float64{10, 20, 50}
	want1 := []float64{11, 21, 51}
	for i := range want0 {
		if series[0][i] != want0[i] || series[1][i] != want1[i] {
			t.Fatalf("series misaligned: %v / %v", series[0], series[1])
		}
	}
}

func TestImbalance(t *testing.T) {
	snaps := []*observer.GlobalSnapshot{
		snap(1, 100, map[int]uint64{0: 1000, 1: 1000}), // balanced: 0
		snap(2, 200, map[int]uint64{0: 2000, 1: 1000}), // |diff|/2 = 500
	}
	groups := [][]dataplane.UnitID{{unit(0), unit(1)}}
	cdf := Imbalance(snaps, groups, 0.001) // ns -> µs
	if cdf.N() != 2 {
		t.Fatalf("samples = %d", cdf.N())
	}
	if got := cdf.MinValue(); got != 0 {
		t.Errorf("min = %v", got)
	}
	if got := cdf.MaxValue(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("max = %v, want 0.5", got)
	}
}

func TestImbalanceSkipsIncompleteGroups(t *testing.T) {
	snaps := []*observer.GlobalSnapshot{
		snap(1, 100, map[int]uint64{0: 5}), // unit 1 missing
	}
	cdf := Imbalance(snaps, [][]dataplane.UnitID{{unit(0), unit(1)}}, 1)
	if cdf.N() != 0 {
		t.Errorf("samples = %d, want 0", cdf.N())
	}
}

func TestCorrelate(t *testing.T) {
	var snaps []*observer.GlobalSnapshot
	for i := packet.SeqID(1); i <= 20; i++ {
		snaps = append(snaps, snap(i, sim.Time(i*100), map[int]uint64{
			0: uint64(i) * 10,             // rising
			1: uint64(i)*10 + uint64(i)%3, // rising with noise: strongly correlated
			2: 1000 - uint64(i)*10,        // falling: anti-correlated
		}))
	}
	m, err := Correlate(snaps, []dataplane.UnitID{unit(0), unit(1), unit(2)})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rho[0][1] < 0.95 {
		t.Errorf("rho(0,1) = %v, want ~1", m.Rho[0][1])
	}
	if m.Rho[0][2] > -0.95 {
		t.Errorf("rho(0,2) = %v, want ~-1", m.Rho[0][2])
	}
}

func TestConcurrentLoad(t *testing.T) {
	snaps := []*observer.GlobalSnapshot{
		snap(1, 100, map[int]uint64{0: 5, 1: 0, 2: 9}),
		snap(2, 200, map[int]uint64{0: 0, 1: 0, 2: 0}),
	}
	cdf := ConcurrentLoad(snaps, []dataplane.UnitID{unit(0), unit(1), unit(2)}, 2)
	if cdf.N() != 2 {
		t.Fatalf("samples = %d", cdf.N())
	}
	if cdf.MaxValue() != 2 || cdf.MinValue() != 0 {
		t.Errorf("range = [%v, %v]", cdf.MinValue(), cdf.MaxValue())
	}
}

func TestRates(t *testing.T) {
	snaps := []*observer.GlobalSnapshot{
		snap(1, sim.Time(0), map[int]uint64{0: 100}),
		snap(2, sim.Time(sim.Second), map[int]uint64{0: 600}),
		snap(3, sim.Time(3*sim.Second), map[int]uint64{0: 1600}),
	}
	rates := Rates(snaps, unit(0))
	if len(rates) != 2 {
		t.Fatalf("rates = %d", len(rates))
	}
	if math.Abs(rates[0].PerSecond-500) > 1e-9 {
		t.Errorf("rate[0] = %v, want 500/s", rates[0].PerSecond)
	}
	if math.Abs(rates[1].PerSecond-500) > 1e-9 {
		t.Errorf("rate[1] = %v, want 500/s", rates[1].PerSecond)
	}
	if rates[0].At != int64(sim.Second)/2 {
		t.Errorf("midpoint = %d", rates[0].At)
	}
}

func TestRatesSkipsMissing(t *testing.T) {
	snaps := []*observer.GlobalSnapshot{
		snap(1, sim.Time(0), map[int]uint64{0: 100}),
		snap(2, sim.Time(sim.Second), map[int]uint64{1: 5}), // unit 0 absent
		snap(3, sim.Time(2*sim.Second), map[int]uint64{0: 300}),
	}
	rates := Rates(snaps, unit(0))
	if len(rates) != 1 {
		t.Fatalf("rates = %d", len(rates))
	}
	if math.Abs(rates[0].PerSecond-100) > 1e-9 {
		t.Errorf("rate = %v, want 100/s over 2s", rates[0].PerSecond)
	}
}

func TestConserved(t *testing.T) {
	ok := []*observer.GlobalSnapshot{
		snap(1, 100, map[int]uint64{0: 10, 1: 8}),
		snap(2, 200, map[int]uint64{0: 20, 1: 20}),
	}
	if got := Conserved(ok, unit(0), unit(1)); got != 0 {
		t.Errorf("violation reported at %d", got)
	}
	bad := []*observer.GlobalSnapshot{
		snap(1, 100, map[int]uint64{0: 10, 1: 8}),
		snap(2, 200, map[int]uint64{0: 15, 1: 16}), // downstream ahead of upstream
	}
	if got := Conserved(bad, unit(0), unit(1)); got != 2 {
		t.Errorf("violation at %d, want 2", got)
	}
	regress := []*observer.GlobalSnapshot{
		snap(1, 100, map[int]uint64{0: 10, 1: 8}),
		snap(2, 200, map[int]uint64{0: 9, 1: 8}), // upstream regressed
	}
	if got := Conserved(regress, unit(0), unit(1)); got != 2 {
		t.Errorf("regression at %d, want 2", got)
	}
}
