// Package analysis turns sequences of assembled global snapshots into
// the whole-network answers the paper's Section 2.2 motivates: load
// imbalance across port groups, correlation of per-port behavior,
// concurrency of load, and rates derived from cumulative counters.
//
// Everything operates on observer.GlobalSnapshot values, so the same
// analyses run over the simulator, the live goroutine runtime, and the
// UDP deployment.
package analysis

import (
	"sort"

	"speedlight/internal/dataplane"
	"speedlight/internal/observer"
	"speedlight/internal/stats"
)

// bySchedule orders snapshots by their scheduling time (assembly order
// can differ when retries interleave).
func bySchedule(snaps []*observer.GlobalSnapshot) []*observer.GlobalSnapshot {
	out := make([]*observer.GlobalSnapshot, len(snaps))
	copy(out, snaps)
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].ScheduledAt != out[b].ScheduledAt {
			return out[a].ScheduledAt < out[b].ScheduledAt
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// UnitSeries extracts, for each unit, its consistent snapshot values in
// schedule order. Snapshots missing a consistent value for any of the
// units are skipped entirely, keeping the series aligned.
func UnitSeries(snaps []*observer.GlobalSnapshot, units []dataplane.UnitID) [][]float64 {
	series := make([][]float64, len(units))
	for _, g := range bySchedule(snaps) {
		row := make([]float64, len(units))
		ok := true
		for i, u := range units {
			v, have := g.Value(u)
			if !have {
				ok = false
				break
			}
			row[i] = float64(v)
		}
		if !ok {
			continue
		}
		for i := range units {
			series[i] = append(series[i], row[i])
		}
	}
	return series
}

// Imbalance computes, for every snapshot and every group of units, the
// population standard deviation of the group's values scaled by scale
// (e.g. 1e-3 for ns -> µs), and returns the distribution — the
// Section 8.3 load-balance analysis. Groups with any missing value at
// an instant are skipped at that instant.
func Imbalance(snaps []*observer.GlobalSnapshot, groups [][]dataplane.UnitID, scale float64) *stats.CDF {
	return stats.NewCDF(ImbalanceSamples(snaps, groups, scale))
}

// ImbalanceSamples returns the raw per-instant, per-group standard
// deviations, for callers that pool samples across runs before building
// a distribution.
func ImbalanceSamples(snaps []*observer.GlobalSnapshot, groups [][]dataplane.UnitID, scale float64) []float64 {
	var out []float64
	for _, g := range bySchedule(snaps) {
		for _, group := range groups {
			xs := make([]float64, 0, len(group))
			for _, u := range group {
				v, ok := g.Value(u)
				if !ok {
					break
				}
				xs = append(xs, float64(v)*scale)
			}
			if len(xs) == len(group) && len(xs) > 1 {
				out = append(out, stats.PopStddev(xs))
			}
		}
	}
	return out
}

// Correlate builds per-unit series from the snapshots and returns their
// pairwise Spearman correlation matrix — the Section 8.4 analysis.
func Correlate(snaps []*observer.GlobalSnapshot, units []dataplane.UnitID) (*stats.CorrMatrix, error) {
	return stats.NewCorrMatrix(UnitSeries(snaps, units))
}

// ConcurrentLoad returns, per snapshot, how many of the given units
// were at or above the threshold in the same instant — the "how much of
// my network is concurrently loaded?" question of Section 1.
func ConcurrentLoad(snaps []*observer.GlobalSnapshot, units []dataplane.UnitID, threshold uint64) *stats.CDF {
	var out []float64
	for _, g := range bySchedule(snaps) {
		loaded := 0
		for _, u := range units {
			if v, ok := g.Value(u); ok && v >= threshold {
				loaded++
			}
		}
		out = append(out, float64(loaded))
	}
	return stats.NewCDF(out)
}

// RatePoint is a derived rate over one inter-snapshot interval.
type RatePoint struct {
	// At is the midpoint of the interval, in virtual nanoseconds.
	At int64
	// PerSecond is the counter delta divided by the interval.
	PerSecond float64
}

// Rates converts a cumulative counter's snapshot sequence into rates:
// consecutive consistent values divided by the time between the
// snapshots' schedules. Because the cuts are causally consistent, the
// deltas are exact event counts for the intervals — something
// asynchronous polling cannot provide.
func Rates(snaps []*observer.GlobalSnapshot, unit dataplane.UnitID) []RatePoint {
	ordered := bySchedule(snaps)
	var out []RatePoint
	var prevVal uint64
	var prevAt int64
	have := false
	for _, g := range ordered {
		v, ok := g.Value(unit)
		if !ok {
			continue
		}
		at := int64(g.ScheduledAt)
		if have && at > prevAt {
			dt := float64(at-prevAt) / 1e9
			out = append(out, RatePoint{
				At:        (at + prevAt) / 2,
				PerSecond: float64(v-prevVal) / dt,
			})
		}
		prevVal, prevAt, have = v, at, true
	}
	return out
}

// Conserved checks a two-unit conservation claim over a snapshot
// sequence: every consistent snapshot's value at a must be at least the
// value at b (a is upstream of b on every path), and both must be
// monotone. It returns the first violating snapshot ID, or 0.
func Conserved(snaps []*observer.GlobalSnapshot, a, b dataplane.UnitID) dataplane.SeqID {
	var lastA, lastB uint64
	for _, g := range bySchedule(snaps) {
		va, okA := g.Value(a)
		vb, okB := g.Value(b)
		if !okA || !okB {
			continue
		}
		if va < vb || va < lastA || vb < lastB {
			return g.ID
		}
		lastA, lastB = va, vb
	}
	return 0
}
