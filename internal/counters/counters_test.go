package counters

import (
	"testing"

	"speedlight/internal/packet"
)

func TestPacketCount(t *testing.T) {
	var c PacketCount
	if c.Read() != 0 {
		t.Error("initial count nonzero")
	}
	p := &packet.Packet{Size: 100}
	for i := 0; i < 5; i++ {
		c.Update(p)
	}
	if c.Read() != 5 {
		t.Errorf("count = %d", c.Read())
	}
	if got := c.Absorb(10, p); got != 11 {
		t.Errorf("Absorb = %d, want 11", got)
	}
}

func TestByteCount(t *testing.T) {
	var c ByteCount
	c.Update(&packet.Packet{Size: 100})
	c.Update(&packet.Packet{Size: 1500})
	if c.Read() != 1600 {
		t.Errorf("bytes = %d", c.Read())
	}
	if got := c.Absorb(50, &packet.Packet{Size: 9000}); got != 9050 {
		t.Errorf("Absorb = %d", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(42)
	if g.Read() != 42 {
		t.Errorf("gauge = %d", g.Read())
	}
	g.Update(&packet.Packet{}) // no effect
	if g.Read() != 42 {
		t.Error("Update changed gauge")
	}
	if g.Absorb(42, &packet.Packet{}) != 42 {
		t.Error("Absorb changed gauge snapshot")
	}
}

func TestEWMAFirstPacketSetsBaseline(t *testing.T) {
	now := int64(0)
	c := NewEWMAInterarrival(func() int64 { return now })
	c.Update(&packet.Packet{})
	if c.Read() != 0 {
		t.Error("EWMA nonzero after single packet")
	}
}

func TestEWMAUniformArrivalsConverge(t *testing.T) {
	now := int64(0)
	c := NewEWMAInterarrival(func() int64 { return now })
	// Packets every 1000 ns. The EWMA should converge toward 1000.
	for i := 0; i < 101; i++ {
		c.Update(&packet.Packet{})
		now += 1000
	}
	got := int64(c.Read())
	if got < 900 || got > 1100 {
		t.Errorf("EWMA = %d, want ~1000", got)
	}
}

func TestEWMAUpdatesEveryOtherPacket(t *testing.T) {
	now := int64(0)
	c := NewEWMAInterarrival(func() int64 { return now })
	c.Update(&packet.Packet{}) // baseline
	now += 500
	c.Update(&packet.Packet{}) // 1st interarrival: phase A, no EWMA change
	if c.Read() != 0 {
		t.Errorf("EWMA changed on phase-A packet: %d", c.Read())
	}
	now += 700
	c.Update(&packet.Packet{}) // 2nd interarrival: phase B, EWMA updates
	// avg = (500+700)/2 = 600; ewma = 0/2 + 600/2 = 300.
	if c.Read() != 300 {
		t.Errorf("EWMA = %d, want 300", c.Read())
	}
}

func TestEWMADecayHalf(t *testing.T) {
	// After a regime change, the EWMA should move halfway toward the
	// new pair average on each update.
	now := int64(0)
	c := NewEWMAInterarrival(func() int64 { return now })
	for i := 0; i < 41; i++ { // 40 interarrivals of 100ns
		c.Update(&packet.Packet{})
		now += 100
	}
	before := int64(c.Read())
	// Two interarrivals of 1000 ns: one EWMA update toward 1000.
	now += 900 // already advanced 100 after last Update
	c.Update(&packet.Packet{})
	now += 1000
	c.Update(&packet.Packet{})
	after := int64(c.Read())
	want := before/2 + 1000/2
	if diff := after - want; diff < -2 || diff > 2 {
		t.Errorf("after = %d, want ~%d (before=%d)", after, want, before)
	}
}

func TestEWMAAbsorbIsIdentity(t *testing.T) {
	c := NewEWMAInterarrival(func() int64 { return 0 })
	if c.Absorb(777, &packet.Packet{}) != 777 {
		t.Error("EWMA Absorb must not change the snapshot")
	}
}

func TestNull(t *testing.T) {
	var n Null
	n.Update(&packet.Packet{})
	if n.Read() != 0 {
		t.Error("Null must read 0")
	}
	if n.Absorb(5, &packet.Packet{}) != 5 {
		t.Error("Null Absorb must be identity")
	}
}
