// Package counters provides the snapshotable metrics used in the
// paper's evaluation: per-port packet and byte counters, queue depth,
// and the exponentially-weighted moving average (EWMA) of packet
// interarrival time that Sections 8.3 and 8.4 analyze.
//
// Every counter implements core.Metric. The snapshot machinery is
// agnostic to the metric (Section 3); these are simply the ones the
// paper exercises.
package counters

import (
	"speedlight/internal/core"
	"speedlight/internal/packet"
)

// PacketCount counts data packets. Its channel state is the number of
// in-flight packets, so the network-wide sum is conserved across a
// consistent cut — the invariant integration tests verify.
type PacketCount struct {
	n uint64
}

var _ core.Metric = (*PacketCount)(nil)

// Read implements core.Metric.
func (c *PacketCount) Read() uint64 { return c.n }

// Update implements core.Metric.
func (c *PacketCount) Update(*packet.Packet) { c.n++ }

// Absorb implements core.Metric: an in-flight packet adds one to the
// recorded count.
func (c *PacketCount) Absorb(snapVal uint64, _ *packet.Packet) uint64 {
	return snapVal + 1
}

// ByteCount sums frame sizes. Channel state adds in-flight bytes.
type ByteCount struct {
	n uint64
}

var _ core.Metric = (*ByteCount)(nil)

// Read implements core.Metric.
func (c *ByteCount) Read() uint64 { return c.n }

// Update implements core.Metric.
func (c *ByteCount) Update(p *packet.Packet) { c.n += uint64(p.Size) }

// Absorb implements core.Metric.
func (c *ByteCount) Absorb(snapVal uint64, p *packet.Packet) uint64 {
	return snapVal + uint64(p.Size)
}

// Gauge is an externally set instantaneous value, such as queue depth.
// The data plane wiring calls Set as the underlying quantity changes.
// Channel state is meaningless for an instantaneous measurement
// (Section 4.2) and Absorb returns the value unchanged.
type Gauge struct {
	v uint64
}

var _ core.Metric = (*Gauge)(nil)

// Set stores the gauge's current value.
func (g *Gauge) Set(v uint64) { g.v = v }

// Read implements core.Metric.
func (g *Gauge) Read() uint64 { return g.v }

// Update implements core.Metric; arrival of a packet does not by itself
// change an externally maintained gauge.
func (g *Gauge) Update(*packet.Packet) {}

// Absorb implements core.Metric.
func (g *Gauge) Absorb(snapVal uint64, _ *packet.Packet) uint64 { return snapVal }

// EWMAInterarrival tracks an exponentially weighted moving average of
// packet interarrival time with decay factor 0.5, implemented in two
// phases exactly as the paper's Section 8 pseudocode describes: hardware
// register limits prevent read-add-divide in one stage, so the average
// of each interarrival pair is folded into the EWMA on every other
// packet.
//
// Times are nanoseconds. Now is called once per packet to obtain the
// arrival timestamp, standing in for the ASIC's ingress timestamp.
type EWMAInterarrival struct {
	Now func() int64

	started  bool
	lastTS   int64
	count    uint64
	tempEWMA int64 // running sum of the current interarrival pair
	ewma     int64
}

var _ core.Metric = (*EWMAInterarrival)(nil)

// NewEWMAInterarrival creates the counter with the given timestamp
// source.
func NewEWMAInterarrival(now func() int64) *EWMAInterarrival {
	return &EWMAInterarrival{Now: now}
}

// Read implements core.Metric, returning the EWMA in nanoseconds.
func (c *EWMAInterarrival) Read() uint64 { return uint64(c.ewma) }

// Update implements core.Metric.
func (c *EWMAInterarrival) Update(*packet.Packet) {
	ts := c.Now()
	if !c.started {
		// The first packet has no interarrival; it only sets last_ts.
		c.started = true
		c.lastTS = ts
		return
	}
	interarrival := ts - c.lastTS
	c.lastTS = ts
	if c.count%2 == 0 {
		c.tempEWMA += interarrival
	} else {
		c.tempEWMA = (c.tempEWMA + interarrival) / 2
		c.ewma = c.ewma/2 + c.tempEWMA/2
		c.tempEWMA = 0
	}
	c.count++
}

// Absorb implements core.Metric. An EWMA is a rate-style instantaneous
// statistic; in-flight packets do not adjust a recorded value.
func (c *EWMAInterarrival) Absorb(snapVal uint64, _ *packet.Packet) uint64 {
	return snapVal
}

// Null is a metric that records nothing. It is useful when only the
// snapshot ID propagation matters, e.g., forwarding-state version
// snapshots store their value through a Gauge instead.
type Null struct{}

var _ core.Metric = Null{}

// Read implements core.Metric.
func (Null) Read() uint64 { return 0 }

// Update implements core.Metric.
func (Null) Update(*packet.Packet) {}

// Absorb implements core.Metric.
func (Null) Absorb(snapVal uint64, _ *packet.Packet) uint64 { return snapVal }
