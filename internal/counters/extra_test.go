package counters

import (
	"math"
	"testing"

	"speedlight/internal/packet"
)

func TestHighWater(t *testing.T) {
	var h HighWater
	h.Set(3)
	h.Set(9)
	h.Set(2)
	if h.Current() != 2 {
		t.Errorf("Current = %d", h.Current())
	}
	if h.Read() != 9 {
		t.Errorf("high water = %d, want 9", h.Read())
	}
	h.Reset()
	if h.Read() != 2 {
		t.Errorf("after reset = %d, want 2", h.Read())
	}
	h.Update(&packet.Packet{})
	if h.Read() != 2 {
		t.Error("Update changed high water")
	}
	if h.Absorb(7, &packet.Packet{}) != 7 {
		t.Error("Absorb should be identity")
	}
}

func TestFlowCountDistinct(t *testing.T) {
	f := NewFlowCount(4096)
	// 100 distinct flows, each sending 50 packets.
	for flow := 0; flow < 100; flow++ {
		for pkt := 0; pkt < 50; pkt++ {
			f.Update(&packet.Packet{SrcHost: uint32(flow), DstHost: 1, SrcPort: uint16(flow), DstPort: 80, Proto: 6})
		}
	}
	set := f.Read()
	if set == 0 || set > 100 {
		t.Fatalf("set bits = %d, want (0,100]", set)
	}
	est := f.Estimate(set)
	if math.Abs(est-100) > 10 {
		t.Errorf("estimate = %.1f, want ~100", est)
	}
}

func TestFlowCountRepeatPacketsDoNotGrow(t *testing.T) {
	f := NewFlowCount(256)
	p := &packet.Packet{SrcHost: 1, DstHost: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	f.Update(p)
	before := f.Read()
	for i := 0; i < 1000; i++ {
		f.Update(p)
	}
	if f.Read() != before {
		t.Error("repeated packets of one flow grew the count")
	}
}

func TestFlowCountEstimateAccuracy(t *testing.T) {
	// Linear counting stays within ~15% for loads below m.
	f := NewFlowCount(2048)
	const flows = 1500
	for i := 0; i < flows; i++ {
		f.Update(&packet.Packet{SrcHost: uint32(i), DstHost: uint32(i * 7), SrcPort: uint16(i), DstPort: 80, Proto: 6})
	}
	est := f.Estimate(f.Read())
	if math.Abs(est-flows)/flows > 0.15 {
		t.Errorf("estimate %.0f for %d flows (err %.1f%%)", est, flows, 100*math.Abs(est-flows)/flows)
	}
}

func TestFlowCountDefaults(t *testing.T) {
	f := NewFlowCount(0)
	if f.Bits() != 4096 {
		t.Errorf("default bits = %d", f.Bits())
	}
	if !math.IsInf(f.Estimate(uint64(f.Bits())), 1) {
		t.Error("saturated bitmap should estimate +Inf")
	}
	if f.Absorb(5, &packet.Packet{}) != 5 {
		t.Error("Absorb should be identity")
	}
	// Rounding up to whole words.
	if NewFlowCount(65).Bits() != 128 {
		t.Error("bit rounding")
	}
}
