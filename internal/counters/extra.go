package counters

import (
	"math"

	"speedlight/internal/core"
	"speedlight/internal/packet"
)

// HighWater is a gauge that also tracks the maximum value it has held
// since the last reset. Snapshotting the high-water mark of queue depth
// catches microbursts that an instantaneous gauge would miss between
// snapshots — the O(10 µs) bursts the paper's Section 2.1 cites as the
// reason asynchronous measurement fails.
type HighWater struct {
	cur uint64
	max uint64
}

var _ core.Metric = (*HighWater)(nil)

// Set updates the current value, raising the high-water mark if needed.
func (h *HighWater) Set(v uint64) {
	h.cur = v
	if v > h.max {
		h.max = v
	}
}

// Current returns the instantaneous value.
func (h *HighWater) Current() uint64 { return h.cur }

// Reset clears the high-water mark down to the current value, e.g.
// after a snapshot epoch has been read out.
func (h *HighWater) Reset() { h.max = h.cur }

// Read implements core.Metric: the snapshotted value is the high-water
// mark.
func (h *HighWater) Read() uint64 { return h.max }

// Update implements core.Metric; packet arrival does not by itself move
// an externally maintained gauge.
func (h *HighWater) Update(*packet.Packet) {}

// Absorb implements core.Metric: a maximum has no meaningful channel
// state.
func (h *HighWater) Absorb(snapVal uint64, _ *packet.Packet) uint64 { return snapVal }

// FlowCount estimates the number of distinct flows seen, using linear
// counting over a flow-hash bitmap — the kind of structure a match-
// action data plane implements with a register array and one stateful
// update per packet. The snapshotted register value is the number of
// set bits; Estimate converts it to a distinct-flow estimate.
type FlowCount struct {
	bits    []uint64
	setBits uint64
}

var _ core.Metric = (*FlowCount)(nil)

// NewFlowCount creates a counter with an m-bit bitmap (rounded up to a
// multiple of 64; default 4096 when m <= 0). Estimates are reliable
// while the flow count stays below roughly m·ln(m).
func NewFlowCount(m int) *FlowCount {
	if m <= 0 {
		m = 4096
	}
	words := (m + 63) / 64
	return &FlowCount{bits: make([]uint64, words)}
}

// Bits returns the bitmap size in bits.
func (f *FlowCount) Bits() int { return len(f.bits) * 64 }

// Read implements core.Metric: the register value is the set-bit count.
func (f *FlowCount) Read() uint64 { return f.setBits }

// Update implements core.Metric.
func (f *FlowCount) Update(p *packet.Packet) {
	h := p.FlowHash() % uint64(f.Bits())
	word, bit := h/64, h%64
	if f.bits[word]&(1<<bit) == 0 {
		f.bits[word] |= 1 << bit
		f.setBits++
	}
}

// Absorb implements core.Metric. An in-flight packet's flow was already
// registered when it passed this unit — in-flight packets here arrive
// on OTHER channels and were counted at their own passage — so the
// recorded value is returned unchanged: distinct-count union cannot be
// maintained additively in a single register value.
func (f *FlowCount) Absorb(snapVal uint64, _ *packet.Packet) uint64 { return snapVal }

// Estimate converts a snapshotted set-bit register value into a
// distinct-flow estimate via linear counting: n ≈ -m · ln(1 - v/m).
func (f *FlowCount) Estimate(setBits uint64) float64 {
	m := float64(f.Bits())
	v := float64(setBits)
	if v >= m {
		return math.Inf(1)
	}
	return -m * math.Log(1-v/m)
}
