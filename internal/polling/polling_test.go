package polling

import (
	"testing"

	"speedlight/internal/dataplane"
	"speedlight/internal/dist"
	"speedlight/internal/emunet"
	"speedlight/internal/packet"
	"speedlight/internal/sim"
	"speedlight/internal/topology"
)

func testNet(t *testing.T) *emunet.Network {
	t.Helper()
	ls, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2,
		HostLinkLatency:   sim.Microsecond,
		FabricLinkLatency: sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := emunet.New(emunet.Config{Topo: ls.Topology, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestPollAllReadsEveryUnit(t *testing.T) {
	n := testNet(t)
	units := n.Switch(0).DP.UnitIDs()
	p := New(n, Config{PerPoll: dist.Constant{V: 100_000}}) // 100 µs each
	var got []Sample
	p.PollAll(units, func(s []Sample) { got = s })
	n.RunFor(10 * sim.Millisecond)
	if len(got) != len(units) {
		t.Fatalf("polled %d of %d units", len(got), len(units))
	}
	// Sequential constant-latency polls: spread = (n-1) * 100 µs.
	want := sim.Duration(len(units)-1) * 100 * sim.Microsecond
	if s := Spread(got); s != want {
		t.Errorf("spread = %v µs, want %v µs", s.Micros(), want.Micros())
	}
}

func TestPollsObserveLiveMutation(t *testing.T) {
	// Values read mid-sequence reflect state at read time: polls of the
	// same counter sequence see different values while traffic flows —
	// the asynchrony the paper criticizes.
	n := testNet(t)
	// Steady traffic host0 -> host2 (cross fabric).
	n.Engine().NewTicker(50*sim.Microsecond, func() {
		n.InjectFromHost(0, &packet.Packet{DstHost: 2, Size: 1000, Proto: 6})
	})
	unit := dataplane.UnitID{Node: 0, Port: 0, Dir: dataplane.Ingress}
	p := New(n, Config{PerPoll: dist.Constant{V: 500_000}}) // 0.5 ms
	var got []Sample
	p.PollAll([]dataplane.UnitID{unit, unit, unit, unit}, func(s []Sample) { got = s })
	n.RunFor(10 * sim.Millisecond)
	if len(got) != 4 {
		t.Fatalf("polled %d", len(got))
	}
	if got[0].Value == got[3].Value {
		t.Errorf("values did not advance across the sweep: %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i].At <= got[i-1].At {
			t.Error("polls not sequential in time")
		}
	}
}

func TestSpreadEmpty(t *testing.T) {
	if Spread(nil) != 0 {
		t.Error("empty spread should be 0")
	}
}

func TestDefaultLatencyIsPlausible(t *testing.T) {
	n := testNet(t)
	p := New(n, Config{})
	var got []Sample
	// Poll all 24 units of the fabric (paper's testbed scale).
	var units []dataplane.UnitID
	for _, sw := range n.Topo().Switches {
		units = append(units, n.Switch(sw.ID).DP.UnitIDs()...)
	}
	p.PollAll(units, func(s []Sample) { got = s })
	n.RunFor(100 * sim.Millisecond)
	if len(got) == 0 {
		t.Fatal("no samples")
	}
	s := Spread(got)
	// Paper: median full-sequence spread 2.6 ms. Anything in the
	// millisecond range is the right order of magnitude.
	if s < 500*sim.Microsecond || s > 20*sim.Millisecond {
		t.Errorf("spread = %v ms, want millisecond scale", s.Seconds()*1000)
	}
}
