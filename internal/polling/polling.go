// Package polling implements the measurement baseline Speedlight is
// compared against throughout Section 8: a traditional counter-polling
// framework in which an observer polls the statistic of each port
// individually via a per-switch control-plane agent that reads and
// returns the value on demand.
//
// Polls are sequential, and each takes a control-plane round trip on
// the order of 100 µs (polling a single counter on a modern switch
// takes on the order of 1 ms without driver modifications, Section 2.1;
// the paper's measured full-sequence spread was a 2.6 ms median across
// its testbed). The resulting samples are mutually asynchronous — the
// exact deficiency synchronized snapshots remove.
package polling

import (
	"math/rand"

	"speedlight/internal/dataplane"
	"speedlight/internal/dist"
	"speedlight/internal/emunet"
	"speedlight/internal/sim"
)

// Sample is one polled value, annotated with the time the register was
// actually read — which differs across the sequence.
type Sample struct {
	Unit  dataplane.UnitID
	Value uint64
	At    sim.Time
}

// Spread returns the difference between the first and last read times
// of a poll sequence (the paper's synchronization metric applied to
// polling).
func Spread(samples []Sample) sim.Duration {
	if len(samples) == 0 {
		return 0
	}
	min, max := samples[0].At, samples[0].At
	for _, s := range samples[1:] {
		if s.At < min {
			min = s.At
		}
		if s.At > max {
			max = s.At
		}
	}
	return max.Sub(min)
}

// Config parameterizes a poller.
type Config struct {
	// PerPoll is the per-counter round-trip latency (observer to
	// control-plane agent to register and back). Default: lognormal
	// with 90 µs median and 400 µs p99.
	PerPoll dist.Dist
}

// Poller sequentially polls processing-unit metrics on an emulated
// network.
type Poller struct {
	net     *emunet.Network
	perPoll dist.Dist
	r       *rand.Rand
}

// New creates a poller over the given network.
func New(net *emunet.Network, cfg Config) *Poller {
	perPoll := cfg.PerPoll
	if perPoll == nil {
		perPoll = dist.LogNormalFromMedianP99(90_000, 400_000)
	}
	return &Poller{net: net, perPoll: perPoll, r: net.Engine().NewRand()}
}

// PollAll schedules one sequential sweep over the given units, reading
// each unit's live metric when its poll round-trip completes, and calls
// done with the collected samples. The sweep runs on virtual time; the
// engine must be advanced for it to make progress.
func (p *Poller) PollAll(units []dataplane.UnitID, done func([]Sample)) {
	eng := p.net.Engine()
	samples := make([]Sample, 0, len(units))
	var next func(i int)
	next = func(i int) {
		if i >= len(units) {
			done(samples)
			return
		}
		lat := sim.Duration(p.perPoll.Sample(p.r))
		eng.After(lat, func() {
			u := p.net.Unit(units[i])
			samples = append(samples, Sample{
				Unit:  units[i],
				Value: u.Metric().Read(),
				At:    eng.Now(),
			})
			next(i + 1)
		})
	}
	next(0)
}
