package observer

import (
	"testing"

	"speedlight/internal/control"
	"speedlight/internal/dataplane"
	"speedlight/internal/packet"
	"speedlight/internal/sim"
	"speedlight/internal/topology"
)

func unitsOf(node topology.NodeID, ports int) []dataplane.UnitID {
	var out []dataplane.UnitID
	for p := 0; p < ports; p++ {
		out = append(out,
			dataplane.UnitID{Node: node, Port: p, Dir: dataplane.Ingress},
			dataplane.UnitID{Node: node, Port: p, Dir: dataplane.Egress})
	}
	return out
}

func newObs(t *testing.T, mod func(*Config)) (*Observer, *[]*GlobalSnapshot) {
	t.Helper()
	var done []*GlobalSnapshot
	cfg := Config{
		MaxID:      16,
		WrapAround: true,
		OnComplete: func(g *GlobalSnapshot) { done = append(done, g) },
	}
	if mod != nil {
		mod(&cfg)
	}
	o, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return o, &done
}

func feedAll(o *Observer, id packet.SeqID, units []dataplane.UnitID, consistent bool, now sim.Time) {
	for i, u := range units {
		o.OnResult(control.Result{
			Unit:       u,
			SnapshotID: id,
			Value:      uint64(i),
			Consistent: consistent,
			ReadAt:     now,
		}, now)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil OnComplete accepted")
	}
	if _, err := New(Config{WrapAround: true, OnComplete: func(*GlobalSnapshot) {}}); err == nil {
		t.Error("WrapAround without MaxID accepted")
	}
}

func TestBasicAssembly(t *testing.T) {
	o, done := newObs(t, nil)
	units := unitsOf(1, 2)
	o.Register(1, units)

	id, err := o.Begin(100)
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Errorf("first id = %d", id)
	}
	if o.Pending() != 1 {
		t.Error("pending != 1")
	}
	feedAll(o, id, units[:3], true, 200)
	if len(*done) != 0 {
		t.Fatal("completed early")
	}
	feedAll(o, id, units[3:], true, 300)
	if len(*done) != 1 {
		t.Fatal("not completed")
	}
	g := (*done)[0]
	if g.ID != 1 || !g.Consistent || len(g.Results) != 4 {
		t.Errorf("snapshot = %+v", g)
	}
	if g.ScheduledAt != 100 || g.CompletedAt != 300 {
		t.Errorf("times = %d, %d", g.ScheduledAt, g.CompletedAt)
	}
	if v, ok := g.Value(units[1]); !ok || v != 1 {
		t.Errorf("Value = %d, %v", v, ok)
	}
	if o.Pending() != 0 {
		t.Error("still pending")
	}
}

func TestInconsistentResultMarksSnapshot(t *testing.T) {
	o, done := newObs(t, nil)
	units := unitsOf(1, 1)
	o.Register(1, units)
	id, _ := o.Begin(0)
	o.OnResult(control.Result{Unit: units[0], SnapshotID: id, Consistent: false}, 0)
	o.OnResult(control.Result{Unit: units[1], SnapshotID: id, Value: 7, Consistent: true}, 0)
	if len(*done) != 1 {
		t.Fatal("not completed")
	}
	g := (*done)[0]
	if g.Consistent {
		t.Error("snapshot with inconsistent unit reported consistent")
	}
	if _, ok := g.Value(units[0]); ok {
		t.Error("inconsistent unit value readable")
	}
	if v, ok := g.Value(units[1]); !ok || v != 7 {
		t.Error("consistent unit value lost")
	}
}

func TestDuplicateAndSpuriousResultsIgnored(t *testing.T) {
	o, done := newObs(t, nil)
	units := unitsOf(1, 1)
	o.Register(1, units)
	id, _ := o.Begin(0)
	o.OnResult(control.Result{Unit: units[0], SnapshotID: id, Value: 1, Consistent: true}, 0)
	// Duplicate with a different value must not overwrite.
	o.OnResult(control.Result{Unit: units[0], SnapshotID: id, Value: 99, Consistent: true}, 0)
	// Result for an unknown snapshot (device that jumped ahead).
	o.OnResult(control.Result{Unit: units[1], SnapshotID: 42, Value: 5, Consistent: true}, 0)
	// Result from an unregistered unit.
	o.OnResult(control.Result{
		Unit:       dataplane.UnitID{Node: 7, Port: 0, Dir: dataplane.Ingress},
		SnapshotID: id, Value: 5, Consistent: true,
	}, 0)
	o.OnResult(control.Result{Unit: units[1], SnapshotID: id, Value: 2, Consistent: true}, 0)
	if len(*done) != 1 {
		t.Fatal("not completed")
	}
	if v, _ := (*done)[0].Value(units[0]); v != 1 {
		t.Errorf("duplicate overwrote value: %d", v)
	}
}

func TestMultiDeviceAssembly(t *testing.T) {
	o, done := newObs(t, nil)
	u1, u2 := unitsOf(1, 1), unitsOf(2, 1)
	o.Register(1, u1)
	o.Register(2, u2)
	if got := o.Devices(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Devices = %v", got)
	}
	id, _ := o.Begin(0)
	feedAll(o, id, u1, true, 0)
	if len(*done) != 0 {
		t.Fatal("completed without device 2")
	}
	feedAll(o, id, u2, true, 0)
	if len(*done) != 1 {
		t.Fatal("not completed")
	}
}

func TestUnregisterShrinksNextSnapshot(t *testing.T) {
	o, done := newObs(t, nil)
	o.Register(1, unitsOf(1, 1))
	o.Register(2, unitsOf(2, 1))
	o.Unregister(2)
	id, _ := o.Begin(0)
	feedAll(o, id, unitsOf(1, 1), true, 0)
	if len(*done) != 1 {
		t.Fatal("snapshot should complete with only device 1")
	}
}

func TestNoLappingWindow(t *testing.T) {
	o, _ := newObs(t, nil) // MaxID 16
	o.Register(1, unitsOf(1, 1))
	// Start snapshots without completing any: the window must close
	// before ID space ambiguity (span ≥ MaxID-1 = 15).
	started := 0
	for i := 0; i < 50; i++ {
		if _, err := o.Begin(0); err != nil {
			break
		}
		started++
	}
	// Serial-number arithmetic disambiguates IDs within half the space:
	// with MaxID 16, live IDs must span at most 16/2 - 1 = 7, so ids
	// 1..8 may be outstanding together and a 9th must wait.
	if started > 8 {
		t.Errorf("started %d without completion; rollover ambiguity possible", started)
	}
	if started < 8 {
		t.Errorf("window too conservative: only %d", started)
	}
}

func TestNoLappingDisabledWithoutWraparound(t *testing.T) {
	o, _ := newObs(t, func(c *Config) { c.WrapAround = false })
	o.Register(1, unitsOf(1, 1))
	for i := 0; i < 100; i++ {
		if _, err := o.Begin(0); err != nil {
			t.Fatalf("Begin failed at %d without wraparound", i)
		}
	}
}

func TestRetryThenExclude(t *testing.T) {
	o, done := newObs(t, func(c *Config) {
		c.RetryAfter = 100
		c.ExcludeAfter = 300
	})
	o.Register(1, unitsOf(1, 1))
	o.Register(2, unitsOf(2, 1))
	id, _ := o.Begin(0)
	feedAll(o, id, unitsOf(1, 1), true, 10)

	// Before the retry deadline: nothing.
	if acts := o.CheckTimeouts(50); len(acts) != 0 {
		t.Fatalf("premature actions: %+v", acts)
	}
	// After RetryAfter: retry for device 2 only.
	acts := o.CheckTimeouts(150)
	if len(acts) != 1 || len(acts[0].Retry) != 1 || acts[0].Retry[0] != 2 {
		t.Fatalf("retry actions = %+v", acts)
	}
	// Retry fires once.
	if acts := o.CheckTimeouts(200); len(acts) != 0 {
		t.Fatalf("second retry issued: %+v", acts)
	}
	// After ExcludeAfter: device 2 excluded, snapshot completes.
	acts = o.CheckTimeouts(400)
	if len(acts) != 1 || len(acts[0].Excluded) != 1 || acts[0].Excluded[0] != 2 {
		t.Fatalf("exclude actions = %+v", acts)
	}
	if len(*done) != 1 {
		t.Fatal("snapshot not finalized after exclusion")
	}
	g := (*done)[0]
	if len(g.Excluded) != 1 || g.Excluded[0] != 2 {
		t.Errorf("Excluded = %v", g.Excluded)
	}
	if len(g.Results) != 2 {
		t.Errorf("results = %d, want device 1's two units", len(g.Results))
	}
}

func TestLateResultAfterExclusionIgnored(t *testing.T) {
	o, done := newObs(t, func(c *Config) { c.ExcludeAfter = 100 })
	o.Register(1, unitsOf(1, 1))
	id, _ := o.Begin(0)
	o.CheckTimeouts(200) // excludes device 1, finalizes empty snapshot
	if len(*done) != 1 {
		t.Fatal("not finalized")
	}
	o.OnResult(control.Result{Unit: unitsOf(1, 1)[0], SnapshotID: id, Consistent: true}, 300)
	if len(*done) != 1 {
		t.Error("late result re-finalized snapshot")
	}
}

func TestSequentialIDs(t *testing.T) {
	o, done := newObs(t, nil)
	units := unitsOf(1, 1)
	o.Register(1, units)
	for want := packet.SeqID(1); want <= 5; want++ {
		id, err := o.Begin(sim.Time(want))
		if err != nil {
			t.Fatal(err)
		}
		if id != want {
			t.Fatalf("id = %d, want %d", id, want)
		}
		feedAll(o, id, units, true, sim.Time(want))
	}
	if len(*done) != 5 {
		t.Errorf("completed %d of 5", len(*done))
	}
}
