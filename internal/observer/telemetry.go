package observer

import "speedlight/internal/telemetry"

// Telemetry is the observer's metric set. Nil fields (or a nil
// Config.Telemetry) are no-ops.
type Telemetry struct {
	// Begun counts snapshots started; Completed counts snapshots
	// finalized; Inconsistent counts completed snapshots in which at
	// least one included unit's value was inconsistent.
	Begun        *telemetry.Counter
	Completed    *telemetry.Counter
	Inconsistent *telemetry.Counter
	// Retries counts devices asked to re-initiate a stalled snapshot;
	// Exclusions counts devices dropped from a snapshot after timeout
	// (Section 6 failure handling).
	Retries    *telemetry.Counter
	Exclusions *telemetry.Counter
	// ResultsIgnored counts per-unit results discarded as duplicate,
	// spurious, or arriving after exclusion.
	ResultsIgnored *telemetry.Counter
	// Pending mirrors the number of snapshots still being assembled.
	Pending *telemetry.Gauge
	// CompletionLatencyUS observes, per completed snapshot, the
	// microseconds between scheduling and global assembly — the
	// paper's completion-latency evaluation axis.
	CompletionLatencyUS *telemetry.Histogram
}

// NewTelemetry registers the observer metric families on reg and
// returns the resolved handles. A nil registry yields no-op metrics.
func NewTelemetry(reg *telemetry.Registry) *Telemetry {
	return &Telemetry{
		Begun:          reg.Counter("speedlight_obs_snapshots_begun_total", "network-wide snapshots started"),
		Completed:      reg.Counter("speedlight_obs_snapshots_completed_total", "network-wide snapshots assembled"),
		Inconsistent:   reg.Counter("speedlight_obs_snapshots_inconsistent_total", "assembled snapshots with an inconsistent unit"),
		Retries:        reg.Counter("speedlight_obs_retries_total", "devices asked to re-initiate a stalled snapshot"),
		Exclusions:     reg.Counter("speedlight_obs_exclusions_total", "devices excluded from a snapshot after timeout"),
		ResultsIgnored: reg.Counter("speedlight_obs_results_ignored_total", "per-unit results discarded as duplicate or spurious"),
		Pending:        reg.Gauge("speedlight_obs_snapshots_pending", "snapshots currently being assembled"),
		CompletionLatencyUS: reg.Histogram("speedlight_obs_completion_latency_us",
			"snapshot completion latency, scheduling to assembly (microseconds)", telemetry.LatencyBucketsUS),
	}
}

var nopTelemetry = &Telemetry{}
