package observer

import (
	"testing"

	"speedlight/internal/control"
	"speedlight/internal/telemetry"
)

// newInstrumentedObs builds an observer with a real registry and tracer
// attached, returning the telemetry handles for assertion.
func newInstrumentedObs(t *testing.T, mod func(*Config)) (*Observer, *Telemetry, *telemetry.Tracer, *[]*GlobalSnapshot) {
	t.Helper()
	tel := NewTelemetry(telemetry.NewRegistry())
	tracer := telemetry.NewTracer(0)
	o, done := newObs(t, func(c *Config) {
		c.Telemetry = tel
		c.Tracer = tracer
		if mod != nil {
			mod(c)
		}
	})
	return o, tel, tracer, done
}

func TestTelemetryRetryAndExclusionCounters(t *testing.T) {
	o, tel, _, done := newInstrumentedObs(t, func(c *Config) {
		c.RetryAfter = 100
		c.ExcludeAfter = 300
	})
	o.Register(1, unitsOf(1, 1))
	o.Register(2, unitsOf(2, 1))
	o.Register(3, unitsOf(3, 1))
	id, _ := o.Begin(0)
	feedAll(o, id, unitsOf(1, 1), true, 10)

	if got := tel.Begun.Value(); got != 1 {
		t.Errorf("Begun = %d", got)
	}
	if got := tel.Pending.Value(); got != 1 {
		t.Errorf("Pending = %d", got)
	}

	// Devices 2 and 3 are still missing at the retry deadline.
	o.CheckTimeouts(150)
	if got := tel.Retries.Value(); got != 2 {
		t.Errorf("Retries = %d, want 2 (devices 2 and 3)", got)
	}
	if got := tel.Exclusions.Value(); got != 0 {
		t.Errorf("Exclusions = %d before exclude deadline", got)
	}

	// Device 3 reports before the exclusion deadline; only device 2 is
	// dropped.
	feedAll(o, id, unitsOf(3, 1), true, 200)
	o.CheckTimeouts(400)
	if got := tel.Exclusions.Value(); got != 1 {
		t.Errorf("Exclusions = %d, want 1 (device 2)", got)
	}
	if got := tel.Retries.Value(); got != 2 {
		t.Errorf("Retries grew to %d after exclusion", got)
	}
	if len(*done) != 1 {
		t.Fatal("snapshot not finalized after exclusion")
	}
	if got := tel.Completed.Value(); got != 1 {
		t.Errorf("Completed = %d", got)
	}
	if got := tel.Pending.Value(); got != 0 {
		t.Errorf("Pending = %d after completion", got)
	}
	if got := tel.CompletionLatencyUS.Count(); got != 1 {
		t.Errorf("CompletionLatencyUS.Count = %d", got)
	}
}

func TestTelemetryInconsistentAndIgnoredCounters(t *testing.T) {
	o, tel, _, _ := newInstrumentedObs(t, nil)
	units := unitsOf(1, 1)
	o.Register(1, units)
	id, _ := o.Begin(0)
	o.OnResult(control.Result{Unit: units[0], SnapshotID: id, Consistent: false}, 0)
	// Duplicate and unknown-snapshot results are discarded.
	o.OnResult(control.Result{Unit: units[0], SnapshotID: id, Consistent: true}, 0)
	o.OnResult(control.Result{Unit: units[1], SnapshotID: 42, Consistent: true}, 0)
	o.OnResult(control.Result{Unit: units[1], SnapshotID: id, Consistent: true}, 0)

	if got := tel.Completed.Value(); got != 1 {
		t.Fatalf("Completed = %d", got)
	}
	if got := tel.Inconsistent.Value(); got != 1 {
		t.Errorf("Inconsistent = %d", got)
	}
	if got := tel.ResultsIgnored.Value(); got != 2 {
		t.Errorf("ResultsIgnored = %d, want 2", got)
	}
}

func TestTracerRecordsLifecycle(t *testing.T) {
	o, _, tracer, _ := newInstrumentedObs(t, nil)
	u1, u2 := unitsOf(1, 1), unitsOf(2, 1)
	o.Register(1, u1)
	o.Register(2, u2)
	id, _ := o.Begin(100)
	feedAll(o, id, u1, true, 200)
	feedAll(o, id, u2, true, 300)

	spans := tracer.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d", len(spans))
	}
	sp := spans[0]
	if sp.ID != uint64(id) || sp.BeginNs != 100 || sp.EndNs != 300 || !sp.Complete || !sp.Consistent {
		t.Errorf("span = %+v", sp)
	}
	if len(sp.Devices) != 2 {
		t.Fatalf("device spans = %d", len(sp.Devices))
	}
	if sp.Devices[0].Node != 1 || sp.Devices[0].Units != 2 || sp.Devices[0].LastNs != 200 {
		t.Errorf("device 1 span = %+v", sp.Devices[0])
	}
	if sp.Devices[1].Node != 2 || sp.Devices[1].FirstNs != 300 {
		t.Errorf("device 2 span = %+v", sp.Devices[1])
	}
}
