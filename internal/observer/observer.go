// Package observer implements the snapshot observer: the host-side
// component that schedules network-wide snapshots, assembles per-unit
// results shipped by the switch control planes, detects global
// completion, retries incomplete snapshots, and excludes failed devices
// (Sections 3 and 6).
//
// The observer also enforces the no-lapping rule out-of-band: a new
// snapshot may not start while an incomplete snapshot more than
// MaxID-1 epochs behind is outstanding, or wrapped IDs would become
// ambiguous (Section 5.3).
package observer

import (
	"fmt"
	"sort"

	"speedlight/internal/control"
	"speedlight/internal/dataplane"
	"speedlight/internal/journal"
	"speedlight/internal/packet"
	"speedlight/internal/sim"
	"speedlight/internal/telemetry"
	"speedlight/internal/topology"
)

// GlobalSnapshot is an assembled network-wide snapshot.
type GlobalSnapshot struct {
	ID packet.SeqID
	// Results holds one finished result per expected unit. Units of
	// excluded devices are absent.
	Results map[dataplane.UnitID]control.Result
	// Excluded lists devices that timed out and were dropped from this
	// snapshot (Section 6: "If a device fails, it may timeout and be
	// excluded from the global snapshot").
	Excluded []topology.NodeID
	// Consistent reports whether every included unit's value is
	// consistent.
	Consistent bool
	// ScheduledAt and CompletedAt bracket the snapshot's lifetime in
	// observer (true) time.
	ScheduledAt sim.Time
	CompletedAt sim.Time
}

// Value returns a unit's recorded value.
func (g *GlobalSnapshot) Value(id dataplane.UnitID) (uint64, bool) {
	r, ok := g.Results[id]
	if !ok || !r.Consistent {
		return 0, false
	}
	return r.Value, true
}

// Config parameterizes an observer.
type Config struct {
	// MaxID mirrors the data plane's snapshot ID space, for no-lapping
	// enforcement. Required when WrapAround.
	MaxID      uint32
	WrapAround bool
	// RetryAfter is how long a snapshot may stay incomplete before the
	// observer requests re-initiation. Zero disables retries.
	RetryAfter sim.Duration
	// ExcludeAfter is how long before missing devices are excluded and
	// the snapshot finalized without them. Zero disables exclusion.
	ExcludeAfter sim.Duration
	// OnComplete receives each finalized global snapshot. Required.
	OnComplete func(*GlobalSnapshot)
	// Telemetry receives the observer's metric updates. Nil disables
	// instrumentation.
	Telemetry *Telemetry
	// Tracer records snapshot-lifecycle spans (initiate → per-device
	// results → assembled). Nil disables tracing.
	Tracer *telemetry.Tracer
	// Journal receives the observer's protocol events (snapshot begin,
	// accepted results, retries, exclusions, completion) for the flight
	// recorder — normally a Set's Observer() ring. Nil disables
	// journaling.
	Journal *journal.Journal
}

// pending tracks an in-progress snapshot.
type pending struct {
	snap    *GlobalSnapshot
	missing map[dataplane.UnitID]bool
	retried bool
}

// Observer assembles global snapshots. Like the other protocol
// components it is a pure state machine driven by the harness.
type Observer struct {
	cfg Config
	tel *Telemetry

	devices map[topology.NodeID][]dataplane.UnitID
	nextID  packet.SeqID
	pend    map[packet.SeqID]*pending
	minOpen packet.SeqID // lowest incomplete snapshot ID, for no-lapping
}

// New creates an observer.
func New(cfg Config) (*Observer, error) {
	if cfg.OnComplete == nil {
		return nil, fmt.Errorf("observer: nil OnComplete")
	}
	if cfg.WrapAround && cfg.MaxID < 2 {
		return nil, fmt.Errorf("observer: WrapAround requires MaxID >= 2")
	}
	tel := cfg.Telemetry
	if tel == nil {
		tel = nopTelemetry
	}
	return &Observer{
		cfg:     cfg,
		tel:     tel,
		devices: make(map[topology.NodeID][]dataplane.UnitID),
		pend:    make(map[packet.SeqID]*pending),
	}, nil
}

// Register adds a device and its processing units to the observer's
// active set. New devices must be registered before they are included in
// the next snapshot (Section 6, node attachment). Registering mid-flight
// does not change snapshots already in progress.
func (o *Observer) Register(node topology.NodeID, units []dataplane.UnitID) {
	o.devices[node] = append([]dataplane.UnitID(nil), units...)
	if o.cfg.Journal != nil {
		for _, u := range units {
			o.cfg.Journal.Append(journal.Register(int(u.Node), u.Port, journalDir(u.Dir)))
		}
	}
}

// journalDir converts a dataplane direction to its journal form.
func journalDir(d dataplane.Direction) journal.Dir {
	if d == dataplane.Ingress {
		return journal.DirIngress
	}
	return journal.DirEgress
}

// Unregister removes a device from the active set.
func (o *Observer) Unregister(node topology.NodeID) {
	delete(o.devices, node)
}

// Devices returns the registered device IDs in ascending order.
func (o *Observer) Devices() []topology.NodeID {
	out := make([]topology.NodeID, 0, len(o.devices))
	for n := range o.devices {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CanStart reports whether starting one more snapshot would respect the
// no-lapping rule: the span between the oldest incomplete snapshot and
// the new ID must stay below MaxID-1.
func (o *Observer) CanStart() bool {
	if !o.cfg.WrapAround || len(o.pend) == 0 {
		return true
	}
	oldest := o.oldestPending()
	// Live IDs must stay within half the ID space: the data and control
	// planes disambiguate rollover with serial-number arithmetic
	// against their last-seen references (Section 5.3), and stale
	// re-initiations (Section 6) must resolve as "behind", not as a
	// forward lap.
	return uint64((o.nextID+1)-oldest) <= uint64(o.cfg.MaxID)/2-1
}

func (o *Observer) oldestPending() packet.SeqID {
	oldest := packet.SeqID(1<<63 - 1)
	for id := range o.pend {
		if id < oldest {
			oldest = id
		}
	}
	return oldest
}

// Begin allocates the next snapshot ID and records the expected unit
// set. The caller is responsible for telling every device control plane
// to initiate the returned ID at the agreed time. Begin returns an
// error when the no-lapping window is full.
func (o *Observer) Begin(now sim.Time) (packet.SeqID, error) {
	if !o.CanStart() {
		return 0, fmt.Errorf("observer: snapshot window full (oldest incomplete %d, next %d, max %d)",
			o.oldestPending(), o.nextID+1, o.cfg.MaxID)
	}
	o.nextID++
	id := o.nextID
	p := &pending{
		snap: &GlobalSnapshot{
			ID:          id,
			Results:     make(map[dataplane.UnitID]control.Result),
			ScheduledAt: now,
		},
		missing: make(map[dataplane.UnitID]bool),
	}
	for _, units := range o.devices {
		for _, u := range units {
			p.missing[u] = true
		}
	}
	o.pend[id] = p
	o.tel.Begun.Inc()
	o.tel.Pending.Set(int64(len(o.pend)))
	o.cfg.Tracer.BeginSnapshot(uint64(id), int64(now))
	if o.cfg.Journal != nil {
		o.cfg.Journal.Append(journal.ObsBegin(int64(now), id))
	}
	return id, nil
}

// Pending returns the number of snapshots still being assembled.
func (o *Observer) Pending() int { return len(o.pend) }

// OnResult ingests one per-unit result from a device control plane.
// Results for unknown snapshots (e.g., from a device that attached
// mid-epoch and jumped forward, Section 6) or already-excluded devices
// are ignored.
func (o *Observer) OnResult(res control.Result, now sim.Time) {
	p, ok := o.pend[res.SnapshotID]
	if !ok {
		o.tel.ResultsIgnored.Inc()
		return
	}
	if !p.missing[res.Unit] {
		o.tel.ResultsIgnored.Inc()
		return // duplicate or spurious
	}
	delete(p.missing, res.Unit)
	p.snap.Results[res.Unit] = res
	o.cfg.Tracer.UnitResult(uint64(res.SnapshotID), int(res.Unit.Node), int64(now))
	if o.cfg.Journal != nil {
		o.cfg.Journal.Append(journal.ObsResult(int64(now), int(res.Unit.Node), res.Unit.Port,
			journalDir(res.Unit.Dir), res.SnapshotID, res.Consistent))
	}
	if len(p.missing) == 0 {
		o.finalize(res.SnapshotID, now)
	}
}

// finalize completes a snapshot and delivers it.
func (o *Observer) finalize(id packet.SeqID, now sim.Time) {
	p := o.pend[id]
	delete(o.pend, id)
	p.snap.CompletedAt = now
	p.snap.Consistent = true
	for _, r := range p.snap.Results {
		if !r.Consistent {
			p.snap.Consistent = false
			break
		}
	}
	sort.Slice(p.snap.Excluded, func(i, j int) bool { return p.snap.Excluded[i] < p.snap.Excluded[j] })
	o.tel.Completed.Inc()
	if !p.snap.Consistent {
		o.tel.Inconsistent.Inc()
	}
	o.tel.Pending.Set(int64(len(o.pend)))
	o.tel.CompletionLatencyUS.Observe(now.Sub(p.snap.ScheduledAt).Micros())
	o.cfg.Tracer.EndSnapshot(uint64(id), int64(now), p.snap.Consistent)
	if o.cfg.Journal != nil {
		o.cfg.Journal.Append(journal.ObsComplete(int64(now), id, p.snap.Consistent, len(p.snap.Excluded)))
	}
	o.cfg.OnComplete(p.snap)
}

// Action is the observer's requested recovery step for a stalled
// snapshot.
type Action struct {
	SnapshotID packet.SeqID
	// Retry lists devices that should re-initiate the snapshot.
	Retry []topology.NodeID
	// Excluded lists devices dropped from the snapshot this call.
	Excluded []topology.NodeID
}

// CheckTimeouts scans pending snapshots: those older than RetryAfter get
// a retry request (once); those older than ExcludeAfter have their
// missing devices excluded, which may finalize the snapshot. The caller
// relays retry requests to the named control planes.
func (o *Observer) CheckTimeouts(now sim.Time) []Action {
	var actions []Action
	ids := make([]packet.SeqID, 0, len(o.pend))
	for id := range o.pend {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p := o.pend[id]
		age := now.Sub(p.snap.ScheduledAt)
		var act Action
		act.SnapshotID = id
		if o.cfg.ExcludeAfter > 0 && age >= o.cfg.ExcludeAfter {
			// Exclude every device still missing units.
			missingDevs := map[topology.NodeID]bool{}
			for u := range p.missing {
				missingDevs[u.Node] = true
			}
			for dev := range missingDevs {
				act.Excluded = append(act.Excluded, dev)
				p.snap.Excluded = append(p.snap.Excluded, dev)
				for u := range p.missing {
					if u.Node == dev {
						delete(p.missing, u)
					}
				}
			}
			sort.Slice(act.Excluded, func(i, j int) bool { return act.Excluded[i] < act.Excluded[j] })
			if len(p.missing) == 0 {
				o.finalize(id, now)
			}
		} else if o.cfg.RetryAfter > 0 && age >= o.cfg.RetryAfter && !p.retried {
			p.retried = true
			missingDevs := map[topology.NodeID]bool{}
			for u := range p.missing {
				missingDevs[u.Node] = true
			}
			for dev := range missingDevs {
				act.Retry = append(act.Retry, dev)
			}
			sort.Slice(act.Retry, func(i, j int) bool { return act.Retry[i] < act.Retry[j] })
		}
		o.tel.Retries.Add(uint64(len(act.Retry)))
		o.tel.Exclusions.Add(uint64(len(act.Excluded)))
		if o.cfg.Journal != nil {
			for _, dev := range act.Retry {
				o.cfg.Journal.Append(journal.ObsRetry(int64(now), id, int(dev)))
			}
			for _, dev := range act.Excluded {
				o.cfg.Journal.Append(journal.ObsExclude(int64(now), id, int(dev)))
			}
		}
		if len(act.Retry) > 0 || len(act.Excluded) > 0 {
			actions = append(actions, act)
		}
	}
	return actions
}
