package topology

import (
	"testing"

	"speedlight/internal/sim"
)

func TestFatTreeRejectsBadK(t *testing.T) {
	for _, k := range []int{0, 1, 3, 5, -2} {
		if _, err := NewFatTree(FatTreeConfig{K: k}); err == nil {
			t.Errorf("k=%d accepted", k)
		}
	}
}

func TestFatTreeK4Shape(t *testing.T) {
	ft, err := NewFatTree(FatTreeConfig{
		K:                 4,
		HostLinkLatency:   sim.Microsecond,
		FabricLinkLatency: 2 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ft.Switches); got != 20 || got != ft.NumSwitches() {
		t.Errorf("switches = %d, want 20", got)
	}
	if got := len(ft.Hosts); got != 16 || got != ft.NumHosts() {
		t.Errorf("hosts = %d, want 16", got)
	}
	if len(ft.Edge) != 4 || len(ft.Edge[0]) != 2 || len(ft.Agg[0]) != 2 || len(ft.Core) != 4 {
		t.Fatalf("layer shapes wrong: %d pods, %d edge, %d agg, %d core",
			len(ft.Edge), len(ft.Edge[0]), len(ft.Agg[0]), len(ft.Core))
	}
	// Every edge switch: 2 hosts below, 2 agg uplinks.
	for pod := range ft.Edge {
		for _, e := range ft.Edge[pod] {
			hosts, aggs := 0, 0
			for p := range ft.Switch(e).Ports {
				switch ft.Peer(e, p).Kind {
				case PeerHost:
					hosts++
				case PeerSwitch:
					aggs++
				}
			}
			if hosts != 2 || aggs != 2 {
				t.Errorf("edge %d: %d hosts, %d uplinks", e, hosts, aggs)
			}
		}
	}
	// Every core switch connects to exactly one agg in every pod.
	for _, c := range ft.Core {
		podsSeen := map[int]int{}
		for p := range ft.Switch(c).Ports {
			peer := ft.Peer(c, p)
			if peer.Kind != PeerSwitch {
				t.Fatalf("core %d port %d unconnected", c, p)
			}
			podsSeen[p]++
			// Port p of a core switch leads to pod p by construction.
			found := false
			for _, agg := range ft.Agg[p] {
				if peer.Node == agg {
					found = true
				}
			}
			if !found {
				t.Errorf("core %d port %d leads to %d, not an agg of pod %d", c, p, peer.Node, p)
			}
		}
		if len(podsSeen) != 4 {
			t.Errorf("core %d reaches %d pods", c, len(podsSeen))
		}
	}
	// Latencies.
	if ft.Peer(ft.Edge[0][0], 0).Latency != sim.Microsecond {
		t.Error("host latency")
	}
	if ft.Peer(ft.Edge[0][0], 2).Latency != 2*sim.Microsecond {
		t.Error("fabric latency")
	}
}

func TestFatTreeK6Counts(t *testing.T) {
	ft, err := NewFatTree(FatTreeConfig{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(ft.Switches) != 45 { // 36 pod + 9 core
		t.Errorf("switches = %d, want 45", len(ft.Switches))
	}
	if len(ft.Hosts) != 54 {
		t.Errorf("hosts = %d, want 54", len(ft.Hosts))
	}
}
