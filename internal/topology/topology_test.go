package topology

import (
	"testing"

	"speedlight/internal/sim"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder()
	s0 := b.AddSwitch(4)
	s1 := b.AddSwitch(4)
	h0 := b.AttachHost(s0, 0, sim.Microsecond)
	b.Connect(s0, 3, s1, 3, 2*sim.Microsecond)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Switches) != 2 || len(topo.Hosts) != 1 {
		t.Fatalf("sizes: %d switches, %d hosts", len(topo.Switches), len(topo.Hosts))
	}
	p := topo.Peer(s0, 0)
	if p.Kind != PeerHost || p.Host != h0 {
		t.Errorf("port 0 peer = %+v", p)
	}
	p = topo.Peer(s0, 3)
	if p.Kind != PeerSwitch || p.Node != s1 || p.Port != 3 {
		t.Errorf("port 3 peer = %+v", p)
	}
	// Symmetric side.
	p = topo.Peer(s1, 3)
	if p.Kind != PeerSwitch || p.Node != s0 || p.Port != 3 {
		t.Errorf("s1 port 3 peer = %+v", p)
	}
	if topo.Peer(s0, 1).Kind != PeerNone {
		t.Error("unconnected port should be PeerNone")
	}
	if topo.Host(h0) == nil || topo.Host(h0).Node != s0 {
		t.Error("host lookup failed")
	}
	if topo.Host(99) != nil {
		t.Error("unknown host lookup should be nil")
	}
	if topo.Switch(NodeID(5)) != nil {
		t.Error("unknown switch lookup should be nil")
	}
}

func TestBuilderRejectsDoubleUse(t *testing.T) {
	b := NewBuilder()
	s0 := b.AddSwitch(2)
	s1 := b.AddSwitch(2)
	b.AttachHost(s0, 0, 0)
	b.Connect(s0, 0, s1, 0, 0) // port already used by host
	if _, err := b.Build(); err == nil {
		t.Error("double port use not rejected")
	}
}

func TestBuilderRejectsBadPort(t *testing.T) {
	b := NewBuilder()
	s0 := b.AddSwitch(2)
	b.AttachHost(s0, 7, 0)
	if _, err := b.Build(); err == nil {
		t.Error("out-of-range port not rejected")
	}
}

func TestBuilderRejectsUnknownSwitch(t *testing.T) {
	b := NewBuilder()
	b.AttachHost(NodeID(3), 0, 0)
	if _, err := b.Build(); err == nil {
		t.Error("unknown switch not rejected")
	}
}

func TestHostsOn(t *testing.T) {
	b := NewBuilder()
	s0 := b.AddSwitch(4)
	s1 := b.AddSwitch(4)
	b.AttachHost(s0, 0, 0)
	b.AttachHost(s1, 0, 0)
	b.AttachHost(s0, 1, 0)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	hs := topo.HostsOn(s0)
	if len(hs) != 2 {
		t.Fatalf("HostsOn(s0) = %d hosts", len(hs))
	}
}

func TestLeafSpine(t *testing.T) {
	ls, err := NewLeafSpine(LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 3,
		HostLinkLatency:   sim.Microsecond,
		FabricLinkLatency: 2 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ls.Switches) != 4 {
		t.Fatalf("switches = %d", len(ls.Switches))
	}
	if len(ls.Hosts) != 6 {
		t.Fatalf("hosts = %d", len(ls.Hosts))
	}
	// Leaf 0 uplink 0 reaches spine 0 at port 0; uplink 1 reaches spine 1.
	up := ls.UplinkPorts(ls.Leaves[0])
	if len(up) != 2 || up[0] != 3 || up[1] != 4 {
		t.Fatalf("uplinks = %v", up)
	}
	for si, port := range up {
		p := ls.Peer(ls.Leaves[0], port)
		if p.Kind != PeerSwitch || p.Node != ls.Spines[si] {
			t.Errorf("uplink %d peer = %+v", si, p)
		}
		if p.Latency != 2*sim.Microsecond {
			t.Errorf("fabric latency = %d", p.Latency)
		}
	}
	// Spine 1 port 0 reaches leaf 0.
	p := ls.Peer(ls.Spines[1], 0)
	if p.Kind != PeerSwitch || p.Node != ls.Leaves[0] {
		t.Errorf("spine downlink peer = %+v", p)
	}
	// Host links.
	for _, h := range ls.Hosts {
		if !ls.IsLeaf(h.Node) {
			t.Errorf("host %d on non-leaf %d", h.ID, h.Node)
		}
		if h.Latency != sim.Microsecond {
			t.Errorf("host latency = %d", h.Latency)
		}
	}
	if ls.IsLeaf(ls.Spines[0]) {
		t.Error("spine misclassified as leaf")
	}
}

func TestLeafSpineRejectsBadConfig(t *testing.T) {
	if _, err := NewLeafSpine(LeafSpineConfig{Leaves: 0, Spines: 1}); err == nil {
		t.Error("bad config accepted")
	}
}

func TestLeafSpinePaperTestbed(t *testing.T) {
	// The paper's testbed: 2 leaves, 2 spines, 6 servers (3 per leaf).
	ls, err := NewLeafSpine(LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 3,
		HostLinkLatency:   sim.Microsecond,
		FabricLinkLatency: sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every leaf must reach every spine.
	for _, leaf := range ls.Leaves {
		seen := map[NodeID]bool{}
		for _, port := range ls.UplinkPorts(leaf) {
			p := ls.Peer(leaf, port)
			seen[p.Node] = true
		}
		for _, spine := range ls.Spines {
			if !seen[spine] {
				t.Errorf("leaf %d missing uplink to spine %d", leaf, spine)
			}
		}
	}
}
