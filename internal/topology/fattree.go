package topology

import (
	"fmt"

	"speedlight/internal/sim"
)

// FatTree is a three-tier k-ary fat-tree: k pods of k/2 edge and k/2
// aggregation switches each, (k/2)^2 core switches, and k/2 hosts per
// edge switch — the canonical datacenter fabric the paper's snapshots
// are meant to observe at scale.
type FatTree struct {
	*Topology
	K int
	// Edge[pod][i], Agg[pod][i] index the pod switches; Core[j] the
	// core layer.
	Edge [][]NodeID
	Agg  [][]NodeID
	Core []NodeID
}

// FatTreeConfig parameterizes the fabric.
type FatTreeConfig struct {
	// K is the switch radix; must be even and at least 2.
	K int
	// HostLinkLatency and FabricLinkLatency mirror LeafSpineConfig.
	HostLinkLatency   sim.Duration
	FabricLinkLatency sim.Duration
}

// NewFatTree builds a k-ary fat-tree.
//
// Port conventions: edge switches use ports [0, k/2) for hosts and
// [k/2, k) for aggregation uplinks; aggregation switches use [0, k/2)
// for edge downlinks and [k/2, k) for core uplinks; core switch j uses
// port p for pod p.
func NewFatTree(cfg FatTreeConfig) (*FatTree, error) {
	k := cfg.K
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topology: fat-tree k must be even and >= 2, got %d", k)
	}
	half := k / 2
	b := NewBuilder()
	ft := &FatTree{K: k}

	for pod := 0; pod < k; pod++ {
		var edges, aggs []NodeID
		for i := 0; i < half; i++ {
			edges = append(edges, b.AddSwitch(k))
		}
		for i := 0; i < half; i++ {
			aggs = append(aggs, b.AddSwitch(k))
		}
		ft.Edge = append(ft.Edge, edges)
		ft.Agg = append(ft.Agg, aggs)
	}
	for j := 0; j < half*half; j++ {
		ft.Core = append(ft.Core, b.AddSwitch(k))
	}

	for pod := 0; pod < k; pod++ {
		for e, edge := range ft.Edge[pod] {
			// Hosts below.
			for h := 0; h < half; h++ {
				b.AttachHost(edge, h, cfg.HostLinkLatency)
			}
			// Full mesh edge <-> agg within the pod.
			for a, agg := range ft.Agg[pod] {
				b.Connect(edge, half+a, agg, e, cfg.FabricLinkLatency)
			}
		}
		// Aggregation a connects to core group a: cores
		// [a*half, (a+1)*half), one per uplink.
		for a, agg := range ft.Agg[pod] {
			for u := 0; u < half; u++ {
				core := ft.Core[a*half+u]
				b.Connect(agg, half+u, core, pod, cfg.FabricLinkLatency)
			}
		}
	}
	t, err := b.Build()
	if err != nil {
		return nil, err
	}
	ft.Topology = t
	return ft, nil
}

// NumSwitches returns the fabric's total switch count: k pods of k
// switches each (k/2 edge + k/2 agg), plus (k/2)^2 core — k^2 + k^2/4.
func (ft *FatTree) NumSwitches() int {
	half := ft.K / 2
	return ft.K*ft.K + half*half
}

// NumHosts returns the host count: k^3/4.
func (ft *FatTree) NumHosts() int {
	return ft.K * ft.K * ft.K / 4
}
