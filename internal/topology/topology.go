// Package topology describes emulated network topologies: switches with
// numbered ports, hosts attached to ports, and switch-to-switch links
// with latency. A builder for the leaf-spine fabrics used throughout the
// paper's evaluation (Figure 8) is included.
package topology

import (
	"fmt"

	"speedlight/internal/sim"
)

// NodeID identifies a switch.
type NodeID int

// HostID identifies a host. Host IDs double as network addresses in the
// packet model.
type HostID uint32

// PeerKind says what sits on the far side of a switch port.
type PeerKind int

const (
	// PeerNone marks an unconnected port.
	PeerNone PeerKind = iota
	// PeerHost marks a port attached to a host.
	PeerHost
	// PeerSwitch marks a port attached to another switch.
	PeerSwitch
)

// Peer describes the far side of a port.
type Peer struct {
	Kind    PeerKind
	Host    HostID // valid when Kind == PeerHost
	Node    NodeID // valid when Kind == PeerSwitch
	Port    int    // valid when Kind == PeerSwitch
	Latency sim.Duration
	// RateBps is the link's transmission rate in bits per second; zero
	// means "use the emulation's default rate".
	RateBps float64
}

// Switch is one switch and its port table.
type Switch struct {
	ID    NodeID
	Ports []Peer
}

// Host is one host and its attachment point.
type Host struct {
	ID   HostID
	Node NodeID
	Port int
	// Latency of the host link.
	Latency sim.Duration
}

// Topology is an immutable description of a network.
type Topology struct {
	Switches []*Switch
	Hosts    []*Host

	hostIdx map[HostID]*Host
}

// Builder incrementally assembles a topology.
type Builder struct {
	t    *Topology
	errs []error
}

// NewBuilder returns an empty topology builder.
func NewBuilder() *Builder {
	return &Builder{t: &Topology{hostIdx: make(map[HostID]*Host)}}
}

// AddSwitch adds a switch with the given number of ports and returns its
// node ID.
func (b *Builder) AddSwitch(numPorts int) NodeID {
	if numPorts < 1 {
		b.errs = append(b.errs, fmt.Errorf("topology: switch with %d ports", numPorts))
		numPorts = 1
	}
	id := NodeID(len(b.t.Switches))
	b.t.Switches = append(b.t.Switches, &Switch{ID: id, Ports: make([]Peer, numPorts)})
	return id
}

// AttachHost attaches a host to a switch port with the given link
// latency and returns the host's ID. The link rate is the emulation
// default; use AttachHostRated to set one.
func (b *Builder) AttachHost(node NodeID, port int, latency sim.Duration) HostID {
	return b.AttachHostRated(node, port, latency, 0)
}

// AttachHostRated attaches a host with an explicit link rate in bits
// per second (zero = emulation default).
func (b *Builder) AttachHostRated(node NodeID, port int, latency sim.Duration, rateBps float64) HostID {
	id := HostID(len(b.t.Hosts))
	if err := b.checkPortFree(node, port); err != nil {
		b.errs = append(b.errs, err)
		return id
	}
	h := &Host{ID: id, Node: node, Port: port, Latency: latency}
	b.t.Hosts = append(b.t.Hosts, h)
	b.t.hostIdx[id] = h
	b.t.Switches[node].Ports[port] = Peer{Kind: PeerHost, Host: id, Latency: latency, RateBps: rateBps}
	return id
}

// Connect links two switch ports with the given latency at the
// emulation's default rate; use ConnectRated to set one.
func (b *Builder) Connect(a NodeID, aPort int, c NodeID, cPort int, latency sim.Duration) {
	b.ConnectRated(a, aPort, c, cPort, latency, 0)
}

// ConnectRated links two switch ports with an explicit link rate in
// bits per second (zero = emulation default).
func (b *Builder) ConnectRated(a NodeID, aPort int, c NodeID, cPort int, latency sim.Duration, rateBps float64) {
	if err := b.checkPortFree(a, aPort); err != nil {
		b.errs = append(b.errs, err)
		return
	}
	if err := b.checkPortFree(c, cPort); err != nil {
		b.errs = append(b.errs, err)
		return
	}
	b.t.Switches[a].Ports[aPort] = Peer{Kind: PeerSwitch, Node: c, Port: cPort, Latency: latency, RateBps: rateBps}
	b.t.Switches[c].Ports[cPort] = Peer{Kind: PeerSwitch, Node: a, Port: aPort, Latency: latency, RateBps: rateBps}
}

func (b *Builder) checkPortFree(node NodeID, port int) error {
	if int(node) < 0 || int(node) >= len(b.t.Switches) {
		return fmt.Errorf("topology: unknown switch %d", node)
	}
	sw := b.t.Switches[node]
	if port < 0 || port >= len(sw.Ports) {
		return fmt.Errorf("topology: switch %d has no port %d", node, port)
	}
	if sw.Ports[port].Kind != PeerNone {
		return fmt.Errorf("topology: switch %d port %d already connected", node, port)
	}
	return nil
}

// Build validates and returns the topology.
func (b *Builder) Build() (*Topology, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	return b.t, nil
}

// Switch returns the switch with the given ID, or nil.
func (t *Topology) Switch(id NodeID) *Switch {
	if int(id) < 0 || int(id) >= len(t.Switches) {
		return nil
	}
	return t.Switches[id]
}

// Host returns the host with the given ID, or nil.
func (t *Topology) Host(id HostID) *Host { return t.hostIdx[id] }

// Peer returns the far side of a switch port.
func (t *Topology) Peer(node NodeID, port int) Peer {
	sw := t.Switch(node)
	if sw == nil || port < 0 || port >= len(sw.Ports) {
		return Peer{}
	}
	return sw.Ports[port]
}

// HostsOn returns the hosts attached to a switch, in port order.
func (t *Topology) HostsOn(node NodeID) []*Host {
	var out []*Host
	for _, h := range t.Hosts {
		if h.Node == node {
			out = append(out, h)
		}
	}
	return out
}

// LeafSpineConfig parameterizes a two-tier Clos fabric like the paper's
// testbed topology (Figure 8): leaves at the edge with hosts below and a
// full mesh to the spines above.
type LeafSpineConfig struct {
	Leaves       int
	Spines       int
	HostsPerLeaf int
	// HostLinkLatency is the host-to-leaf propagation delay.
	HostLinkLatency sim.Duration
	// FabricLinkLatency is the leaf-to-spine propagation delay.
	FabricLinkLatency sim.Duration
	// HostRateBps / FabricRateBps set the link rates (zero = the
	// emulation default). The paper's testbed pairs 25 GbE server links
	// with 100 GbE fabric links.
	HostRateBps   float64
	FabricRateBps float64
}

// LeafSpine describes the built fabric: the topology plus the role of
// each switch and the uplink port ranges that the load-balancing
// analyses compare (Section 8.3 compares uplinks of the same switch).
type LeafSpine struct {
	*Topology
	Cfg    LeafSpineConfig
	Leaves []NodeID
	Spines []NodeID
}

// NewLeafSpine builds a leaf-spine fabric. Leaf ports [0,HostsPerLeaf)
// attach hosts; ports [HostsPerLeaf, HostsPerLeaf+Spines) are uplinks,
// uplink i leading to spine i. Spine ports are one per leaf, port j
// leading to leaf j.
func NewLeafSpine(cfg LeafSpineConfig) (*LeafSpine, error) {
	if cfg.Leaves < 1 || cfg.Spines < 1 || cfg.HostsPerLeaf < 0 {
		return nil, fmt.Errorf("topology: bad leaf-spine config %+v", cfg)
	}
	b := NewBuilder()
	ls := &LeafSpine{Cfg: cfg}
	for i := 0; i < cfg.Leaves; i++ {
		ls.Leaves = append(ls.Leaves, b.AddSwitch(cfg.HostsPerLeaf+cfg.Spines))
	}
	for i := 0; i < cfg.Spines; i++ {
		ls.Spines = append(ls.Spines, b.AddSwitch(cfg.Leaves))
	}
	for li, leaf := range ls.Leaves {
		for h := 0; h < cfg.HostsPerLeaf; h++ {
			b.AttachHostRated(leaf, h, cfg.HostLinkLatency, cfg.HostRateBps)
		}
		for si, spine := range ls.Spines {
			b.ConnectRated(leaf, cfg.HostsPerLeaf+si, spine, li, cfg.FabricLinkLatency, cfg.FabricRateBps)
		}
	}
	t, err := b.Build()
	if err != nil {
		return nil, err
	}
	ls.Topology = t
	return ls, nil
}

// UplinkPorts returns a leaf's uplink port numbers.
func (ls *LeafSpine) UplinkPorts(leaf NodeID) []int {
	ports := make([]int, ls.Cfg.Spines)
	for i := range ports {
		ports[i] = ls.Cfg.HostsPerLeaf + i
	}
	return ports
}

// IsLeaf reports whether the node is a leaf switch.
func (ls *LeafSpine) IsLeaf(n NodeID) bool {
	return int(n) < ls.Cfg.Leaves
}
