package snapstore_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"speedlight/internal/dataplane"
	"speedlight/internal/snapstore"
)

func get(t *testing.T, h http.Handler, target string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
	var body map[string]any
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("GET %s: bad JSON: %v\n%s", target, err, rec.Body.String())
		}
	}
	return rec, body
}

func TestHTTPHandler(t *testing.T) {
	s := snapstore.New(snapstore.Config{})
	u0, u1 := unit(0, 0, dataplane.Ingress), unit(0, 1, dataplane.Egress)
	seal(s, 5, map[dataplane.UnitID]uint64{u0: 10, u1: 20})
	seal(s, 6, map[dataplane.UnitID]uint64{u0: 10, u1: 33})

	h := snapstore.HTTPHandler(s.View)

	// List.
	rec, body := get(t, h, "/snapshots")
	if rec.Code != http.StatusOK {
		t.Fatalf("list: %d", rec.Code)
	}
	if n := body["retained"].(float64); n != 2 {
		t.Fatalf("retained = %v, want 2", n)
	}
	epochs := body["epochs"].([]any)
	first := epochs[0].(map[string]any)
	if first["epoch"].(float64) != 5 || first["base"] != true {
		t.Fatalf("first listed epoch = %v", first)
	}

	// State at epoch 6.
	rec, body = get(t, h, "/snapshots?epoch=6")
	if rec.Code != http.StatusOK {
		t.Fatalf("state: %d %s", rec.Code, rec.Body.String())
	}
	units := body["units"].([]any)
	if len(units) != 2 {
		t.Fatalf("state has %d units, want 2", len(units))
	}
	u := units[1].(map[string]any)
	if u["unit"] != u1.String() || u["value"].(float64) != 33 {
		t.Fatalf("unit[1] = %v, want %s=33", u, u1)
	}

	// Diff.
	rec, body = get(t, h, "/snapshots/diff?from=5&to=6")
	if rec.Code != http.StatusOK {
		t.Fatalf("diff: %d %s", rec.Code, rec.Body.String())
	}
	changed := body["changed"].([]any)
	if len(changed) != 1 {
		t.Fatalf("diff changed %d regs, want 1: %v", len(changed), changed)
	}
	c := changed[0].(map[string]any)
	if c["unit"] != u1.String() {
		t.Fatalf("changed unit = %v, want %s", c["unit"], u1)
	}
	if c["from"].(map[string]any)["value"].(float64) != 20 || c["to"].(map[string]any)["value"].(float64) != 33 {
		t.Fatalf("diff values = %v", c)
	}

	// Errors.
	if rec, _ := get(t, h, "/snapshots?epoch=99"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown epoch: %d, want 404", rec.Code)
	}
	if rec, _ := get(t, h, "/snapshots?epoch=bogus"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad epoch: %d, want 400", rec.Code)
	}
	if rec, _ := get(t, h, "/snapshots/diff?from=5"); rec.Code != http.StatusBadRequest {
		t.Fatalf("diff missing to: %d, want 400", rec.Code)
	}
	if rec, _ := get(t, h, "/snapshots/diff?from=5&to=99"); rec.Code != http.StatusNotFound {
		t.Fatalf("diff unknown epoch: %d, want 404", rec.Code)
	}
}

func TestHTTPHandlerNilSource(t *testing.T) {
	rec := httptest.NewRecorder()
	snapstore.HTTPHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/snapshots", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("nil source: %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "no snapshot store") {
		t.Fatalf("nil source body: %q", rec.Body.String())
	}
}
