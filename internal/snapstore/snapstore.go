// Package snapstore is the snapshot-history store behind the query
// plane: a bounded in-memory bank of completed global snapshots, one
// sealed epoch per assembled observer.GlobalSnapshot.
//
// Epochs are stored as delta encodings — only the registers that
// changed since the previous consistent cut — with a full
// materialization ("base") every CheckpointEvery epochs so any retained
// epoch reconstructs by walking at most one checkpoint interval of
// deltas. Retention is exact: once more than Retention epochs are
// held, the oldest is compacted away, and when the surviving oldest
// epoch is not a base it is promoted to one (a copy carrying its full
// materialization) so every published view remains self-contained.
//
// Reads never block ingestion. Each seal publishes an immutable View
// through a single atomic pointer swap (in the spirit of Bezerra et
// al.'s fast atomic snapshots): a reader loads the pointer once and
// then owns a consistent catalogue of epochs — sealed epochs are never
// mutated, so thousands of concurrent readers can reconstruct any
// retained cut while the writer keeps sealing new ones.
//
// Concurrency contract: all writer methods (Begin, Observe, Seal,
// Ingest, RecordLag) must be serialized — the observer's completion
// path. Under the emulated fabric that path is the observer's
// simulation domain: a sharded domain of the per-pair parallel engine,
// where domain events never run concurrently with each other even
// though the hosting shard migrates work off the coordinator. One
// logical writer at a time, not one pinned goroutine. View and Sealed
// are safe from any goroutine at any time.
package snapstore

import (
	"fmt"
	"sort"
	"sync/atomic"

	"speedlight/internal/dataplane"
	"speedlight/internal/observer"
	"speedlight/internal/packet"
	"speedlight/internal/sim"
	"speedlight/internal/telemetry"
	"speedlight/internal/topology"
)

// Reg is one processing unit's register in a reconstructed cut.
type Reg struct {
	// Value is the recorded state (meaningful only when Present).
	Value uint64
	// Consistent mirrors the control plane's per-unit consistency
	// verdict for the value.
	Consistent bool
	// Present is false when the unit had no result in the cut (its
	// device was excluded, or it attached after the epoch).
	Present bool
}

// Delta is one register change relative to the previous sealed epoch.
type Delta struct {
	// Unit is the dense unit index into the store's unit table.
	Unit int32
	// Value and Consistent are the register's new state. When Present
	// is false the unit left the cut and both are zero.
	Value      uint64
	Consistent bool
	Present    bool
}

// Epoch is one sealed snapshot in the history. All fields are
// immutable after Seal; an Epoch reachable from any View is safe to
// read concurrently with ingestion forever.
type Epoch struct {
	// ID is the observer's snapshot ID for this epoch.
	ID packet.SeqID
	// Seq is the seal sequence number (ingest order, starting at 1).
	Seq uint64
	// ScheduledAt and CompletedAt bracket the snapshot's lifetime in
	// observer time.
	ScheduledAt sim.Time
	CompletedAt sim.Time
	// Sync is the snapshot's measured synchronization spread (zero when
	// unknown).
	Sync sim.Duration
	// Consistent reports whether every included unit was consistent.
	Consistent bool
	// Excluded lists devices dropped from this snapshot.
	Excluded []topology.NodeID

	// deltas holds the registers that changed since the previous sealed
	// epoch. base, when non-nil, is the full materialization of this
	// epoch's cut (checkpoint epochs and promoted retention heads).
	deltas []Delta
	base   []Reg
	// nUnits is the unit-table length at seal time: indices >= nUnits
	// were not yet registered and are absent from this cut.
	nUnits int
}

// IsBase reports whether the epoch carries a full materialization.
func (e *Epoch) IsBase() bool { return e.base != nil }

// DeltaCount returns how many register changes the epoch recorded.
func (e *Epoch) DeltaCount() int { return len(e.deltas) }

// Config parameterizes a store.
type Config struct {
	// Retention bounds the number of retained epochs. Default 1024.
	Retention int
	// CheckpointEvery is the full-materialization cadence: every Nth
	// sealed epoch stores its complete cut alongside the delta, so
	// reconstruction walks at most N-1 delta sets. Default 16; 1 makes
	// every epoch a base (no delta chains).
	CheckpointEvery int
	// Registry, when set, enables the store's telemetry. Nil disables
	// instrumentation.
	Registry *telemetry.Registry
}

func (c *Config) setDefaults() {
	if c.Retention <= 0 {
		c.Retention = 1024
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 16
	}
}

// Store is the snapshot-history store. See the package comment for the
// concurrency contract.
type Store struct {
	cfg Config

	// Writer-owned state (single ingesting goroutine).
	unitIdx map[dataplane.UnitID]int32
	units   []dataplane.UnitID
	// prev is the previous sealed epoch's cut, the reference the next
	// epoch's deltas are computed against. After Seal it equals the
	// just-sealed epoch's full state.
	prev []Reg
	// seen stamps the epoch sequence that last observed each unit, so
	// Seal can detect units that dropped out of the cut.
	seen      []uint64
	cur       *Epoch
	curSeq    uint64
	sinceBase int
	scratch   []dataplane.UnitID

	view   atomic.Pointer[View]
	sealed atomic.Uint64

	tel storeTelemetry
}

// storeTelemetry is the store's metric set; all fields are nil no-ops
// without a registry.
type storeTelemetry struct {
	seals      *telemetry.Counter
	deltas     *telemetry.Counter
	bases      *telemetry.Counter
	evicted    *telemetry.Counter
	promotions *telemetry.Counter
	retained   *telemetry.Gauge
	lag        *telemetry.Gauge
}

func newStoreTelemetry(reg *telemetry.Registry) storeTelemetry {
	return storeTelemetry{
		seals:      reg.Counter("speedlight_snapstore_seals_total", "epochs sealed into the history store"),
		deltas:     reg.Counter("speedlight_snapstore_deltas_total", "register deltas recorded across all sealed epochs"),
		bases:      reg.Counter("speedlight_snapstore_bases_total", "full-materialization (base) epochs stored"),
		evicted:    reg.Counter("speedlight_snapstore_evicted_total", "epochs compacted away by retention"),
		promotions: reg.Counter("speedlight_snapstore_promotions_total", "retained epochs promoted to bases during compaction"),
		retained:   reg.Gauge("speedlight_snapstore_epochs_retained", "epochs currently retained in the store"),
		lag:        reg.Gauge("speedlight_snapstore_lag_epochs", "observer epochs completed but not yet sealed into the store"),
	}
}

// New builds a store.
func New(cfg Config) *Store {
	cfg.setDefaults()
	return &Store{
		cfg:     cfg,
		unitIdx: make(map[dataplane.UnitID]int32),
		tel:     newStoreTelemetry(cfg.Registry),
	}
}

// Retention returns the configured epoch bound.
func (s *Store) Retention() int { return s.cfg.Retention }

// Sealed returns how many epochs have ever been sealed. Safe from any
// goroutine; with the observer's completed count it yields the
// ingestion lag behind HealthCheck.
func (s *Store) Sealed() uint64 { return s.sealed.Load() }

// RecordLag publishes the ingestion-lag gauge: how many epochs the
// observer has completed that the store has not yet sealed.
func (s *Store) RecordLag(completed uint64) {
	sealed := s.sealed.Load()
	if completed < sealed {
		completed = sealed
	}
	s.tel.lag.Set(int64(completed - sealed))
}

// HealthCheck returns a readiness check that fails when the store's
// ingestion lags the observer by more than maxLag epochs — the serving
// plane is then answering from stale history and /readyz should flip.
// completed reports the observer's completed-epoch count and must be
// safe for concurrent use.
func HealthCheck(s *Store, completed func() uint64, maxLag uint64) func() error {
	return func() error {
		done := completed()
		sealed := s.Sealed()
		if done > sealed && done-sealed > maxLag {
			return fmt.Errorf("snapshot store %d epochs behind the observer (max %d)", done-sealed, maxLag)
		}
		return nil
	}
}

// View returns the current immutable view of the history: one atomic
// load, safe from any goroutine, never blocked by ingestion. The
// returned view stays internally consistent forever; it simply stops
// including epochs sealed after it was taken.
func (s *Store) View() *View {
	if v := s.view.Load(); v != nil {
		return v
	}
	return emptyView
}

var emptyView = &View{}

// Begin opens the epoch for snapshot id. Every Observe until the
// matching Seal records one unit of the epoch's cut.
func (s *Store) Begin(id packet.SeqID, scheduledAt sim.Time) {
	if s.cur != nil {
		panic(fmt.Sprintf("snapstore: Begin(%d) with epoch %d still open", id, s.cur.ID))
	}
	s.curSeq++
	s.cur = &Epoch{
		ID:          id,
		Seq:         s.curSeq,
		ScheduledAt: scheduledAt,
		deltas:      make([]Delta, 0, len(s.units)),
	}
}

// Observe records one unit's value in the open epoch. Registers whose
// value and consistency match the previous sealed cut are elided (the
// delta encoding); duplicate observations of a unit within one epoch
// keep the first. This is the ingestion hot path: steady-state calls
// are allocation-free.
//
//speedlight:hotpath
func (s *Store) Observe(u dataplane.UnitID, value uint64, consistent bool) {
	if s.cur == nil {
		panic("snapstore: Observe without Begin")
	}
	idx, ok := s.unitIdx[u]
	if !ok {
		idx = s.register(u)
	}
	if s.seen[idx] == s.curSeq {
		return
	}
	s.seen[idx] = s.curSeq
	p := s.prev[idx]
	if p.Present && p.Value == value && p.Consistent == consistent {
		return
	}
	s.cur.deltas = append(s.cur.deltas, Delta{Unit: idx, Value: value, Consistent: consistent, Present: true})
	s.prev[idx] = Reg{Value: value, Consistent: consistent, Present: true}
}

// register adds a unit to the dense table (cold path: each unit
// registers once, on its first ever observation).
func (s *Store) register(u dataplane.UnitID) int32 {
	idx := int32(len(s.units))
	s.units = append(s.units, u)
	s.prev = append(s.prev, Reg{})
	s.seen = append(s.seen, 0)
	s.unitIdx[u] = idx
	return idx
}

// Seal closes the open epoch and publishes a new view containing it.
// Units present in the previous cut but unobserved this epoch are
// recorded as departures. Returns the sealed (now immutable) epoch.
func (s *Store) Seal(completedAt sim.Time, consistent bool, excluded []topology.NodeID, sync sim.Duration) *Epoch {
	e := s.cur
	if e == nil {
		panic("snapstore: Seal without Begin")
	}
	s.cur = nil

	// Departures: previously present units with no result this epoch.
	for idx := range s.prev {
		if s.prev[idx].Present && s.seen[idx] != s.curSeq {
			e.deltas = append(e.deltas, Delta{Unit: int32(idx), Present: false})
			s.prev[idx] = Reg{}
		}
	}
	e.CompletedAt = completedAt
	e.Consistent = consistent
	e.Sync = sync
	if len(excluded) > 0 {
		e.Excluded = append([]topology.NodeID(nil), excluded...)
	}
	e.nUnits = len(s.units)

	old := s.View()
	// Checkpoint cadence: the first epoch is always a base; afterwards
	// every CheckpointEvery-th epoch materializes its full cut (prev is
	// exactly this epoch's state once the deltas above are applied).
	if len(old.epochs) == 0 || s.sinceBase+1 >= s.cfg.CheckpointEvery {
		e.base = append([]Reg(nil), s.prev...)
		s.sinceBase = 0
		s.tel.bases.Inc()
	} else {
		s.sinceBase++
	}

	// Build the successor view: retained epochs plus e, compacted to
	// the retention bound, with the surviving head promoted to a base
	// if compaction cut the chain in front of it.
	n := len(old.epochs) + 1
	cut := 0
	if n > s.cfg.Retention {
		cut = n - s.cfg.Retention
	}
	epochs := make([]*Epoch, 0, n-cut)
	if cut > 0 {
		s.tel.evicted.Add(uint64(cut))
	}
	if cut < len(old.epochs) {
		head := old.epochs[cut]
		if !head.IsBase() {
			head = promote(old, cut)
			s.tel.promotions.Inc()
		}
		epochs = append(epochs, head)
		epochs = append(epochs, old.epochs[cut+1:]...)
	}
	epochs = append(epochs, e)

	s.view.Store(&View{epochs: epochs, units: s.units[:len(s.units):len(s.units)]})
	s.sealed.Add(1)
	s.tel.seals.Inc()
	s.tel.deltas.Add(uint64(len(e.deltas)))
	s.tel.retained.Set(int64(len(epochs)))
	return e
}

// promote returns a base-carrying copy of v.epochs[i]: same identity
// and deltas, plus the full materialization of its cut reconstructed
// from the old view. The original epoch is left untouched — views that
// reference it remain valid.
func promote(v *View, i int) *Epoch {
	st := v.stateAt(i)
	p := *v.epochs[i]
	p.base = st.Regs
	return &p
}

// Ingest records one assembled global snapshot as a sealed epoch:
// Begin, one Observe per unit result (in deterministic unit order),
// Seal. sync is the snapshot's measured synchronization spread (zero
// when unknown). Returns the sealed epoch.
func (s *Store) Ingest(g *observer.GlobalSnapshot, sync sim.Duration) *Epoch {
	s.Begin(g.ID, g.ScheduledAt)
	s.scratch = s.scratch[:0]
	for u := range g.Results {
		s.scratch = append(s.scratch, u)
	}
	sort.Slice(s.scratch, func(a, b int) bool { return unitLess(s.scratch[a], s.scratch[b]) })
	for _, u := range s.scratch {
		res := g.Results[u]
		s.Observe(u, res.Value, res.Consistent)
	}
	return s.Seal(g.CompletedAt, g.Consistent, g.Excluded, sync)
}

// unitLess is the canonical unit order (switch, port, direction).
func unitLess(a, b dataplane.UnitID) bool {
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	if a.Port != b.Port {
		return a.Port < b.Port
	}
	return a.Dir < b.Dir
}
