package snapstore_test

import (
	"math/rand"
	"testing"

	"speedlight/internal/control"
	"speedlight/internal/dataplane"
	"speedlight/internal/observer"
	"speedlight/internal/packet"
	"speedlight/internal/snapstore"
	"speedlight/internal/telemetry"
	"speedlight/internal/topology"
)

func unit(node, port int, dir dataplane.Direction) dataplane.UnitID {
	return dataplane.UnitID{Node: topology.NodeID(node), Port: port, Dir: dir}
}

// seal drives one epoch through the store from a unit->value map.
func seal(s *snapstore.Store, id packet.SeqID, values map[dataplane.UnitID]uint64) *snapstore.Epoch {
	g := &observer.GlobalSnapshot{
		ID:         id,
		Results:    make(map[dataplane.UnitID]control.Result, len(values)),
		Consistent: true,
	}
	for u, v := range values {
		g.Results[u] = control.Result{Unit: u, SnapshotID: id, Value: v, Consistent: true}
	}
	return s.Ingest(g, 0)
}

func TestStoreBasic(t *testing.T) {
	s := snapstore.New(snapstore.Config{Retention: 8, CheckpointEvery: 4})
	u0, u1 := unit(0, 0, dataplane.Ingress), unit(0, 1, dataplane.Egress)

	e1 := seal(s, 1, map[dataplane.UnitID]uint64{u0: 10, u1: 20})
	if !e1.IsBase() {
		t.Fatal("first epoch must be a base")
	}
	if e1.DeltaCount() != 2 {
		t.Fatalf("first epoch deltas = %d, want 2", e1.DeltaCount())
	}

	// Unchanged register elided; changed one recorded.
	e2 := seal(s, 2, map[dataplane.UnitID]uint64{u0: 10, u1: 25})
	if e2.IsBase() {
		t.Fatal("second epoch should be delta-only")
	}
	if e2.DeltaCount() != 1 {
		t.Fatalf("second epoch deltas = %d, want 1 (u0 unchanged)", e2.DeltaCount())
	}

	v := s.View()
	if v.Len() != 2 {
		t.Fatalf("view has %d epochs, want 2", v.Len())
	}
	st, err := v.State(2)
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := st.Value(u0); !ok || r.Value != 10 {
		t.Fatalf("u0@2 = %+v, want 10", r)
	}
	if r, ok := st.Value(u1); !ok || r.Value != 25 {
		t.Fatalf("u1@2 = %+v, want 25", r)
	}
	st1, err := v.State(1)
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := st1.Value(u1); !ok || r.Value != 20 {
		t.Fatalf("u1@1 = %+v, want 20", r)
	}
	if s.Sealed() != 2 {
		t.Fatalf("Sealed() = %d, want 2", s.Sealed())
	}
}

func TestStoreDeparture(t *testing.T) {
	s := snapstore.New(snapstore.Config{Retention: 8, CheckpointEvery: 100})
	u0, u1 := unit(0, 0, dataplane.Ingress), unit(0, 1, dataplane.Egress)

	seal(s, 1, map[dataplane.UnitID]uint64{u0: 1, u1: 2})
	seal(s, 2, map[dataplane.UnitID]uint64{u0: 1}) // u1 drops out

	st, err := s.View().State(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Value(u1); ok {
		t.Fatal("u1 should be absent from epoch 2's cut")
	}
	if _, ok := st.Value(u0); !ok {
		t.Fatal("u0 should remain present")
	}

	// Reappearance is a fresh delta even at the old value.
	seal(s, 3, map[dataplane.UnitID]uint64{u0: 1, u1: 2})
	st3, err := s.View().State(3)
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := st3.Value(u1); !ok || r.Value != 2 {
		t.Fatalf("u1@3 = %+v, want present 2", r)
	}
}

func TestStoreDuplicateObserveKeepsFirst(t *testing.T) {
	s := snapstore.New(snapstore.Config{})
	u := unit(1, 0, dataplane.Ingress)
	s.Begin(7, 0)
	s.Observe(u, 100, true)
	s.Observe(u, 999, true)
	s.Seal(0, true, nil, 0)
	st, err := s.View().State(7)
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := st.Value(u); r.Value != 100 {
		t.Fatalf("duplicate observe overwrote: got %d, want 100", r.Value)
	}
}

func TestStoreRetentionAndPromotion(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := snapstore.New(snapstore.Config{Retention: 4, CheckpointEvery: 16, Registry: reg})
	u := unit(0, 0, dataplane.Ingress)

	for i := 1; i <= 10; i++ {
		seal(s, packet.SeqID(i), map[dataplane.UnitID]uint64{u: uint64(i * 100)})
	}
	v := s.View()
	if v.Len() != 4 {
		t.Fatalf("retained %d epochs, want 4", v.Len())
	}
	// Oldest retained epoch (7) is far from the only natural base (1),
	// which was evicted — it must have been promoted.
	if !v.Epochs()[0].IsBase() {
		t.Fatal("view head must be a base after compaction")
	}
	for i := 7; i <= 10; i++ {
		st, err := v.State(packet.SeqID(i))
		if err != nil {
			t.Fatalf("epoch %d: %v", i, err)
		}
		if r, ok := st.Value(u); !ok || r.Value != uint64(i*100) {
			t.Fatalf("u@%d = %+v, want %d", i, r, i*100)
		}
	}
	if _, err := v.State(3); err == nil {
		t.Fatal("evicted epoch 3 should not reconstruct")
	}
}

func TestOldViewSurvivesCompaction(t *testing.T) {
	s := snapstore.New(snapstore.Config{Retention: 3, CheckpointEvery: 2})
	u := unit(0, 0, dataplane.Ingress)
	seal(s, 1, map[dataplane.UnitID]uint64{u: 11})
	seal(s, 2, map[dataplane.UnitID]uint64{u: 22})
	old := s.View()
	// Push epochs 1 and 2 out of the current retention window.
	for i := 3; i <= 9; i++ {
		seal(s, packet.SeqID(i), map[dataplane.UnitID]uint64{u: uint64(i * 11)})
	}
	if _, err := s.View().State(1); err == nil {
		t.Fatal("epoch 1 should be evicted from the current view")
	}
	// The old view still reconstructs what it retained at capture time.
	st, err := old.State(2)
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := st.Value(u); r.Value != 22 {
		t.Fatalf("old view u@2 = %d, want 22", r.Value)
	}
}

func TestViewDiff(t *testing.T) {
	s := snapstore.New(snapstore.Config{})
	u0, u1, u2 := unit(0, 0, dataplane.Ingress), unit(0, 1, dataplane.Ingress), unit(1, 0, dataplane.Egress)
	seal(s, 1, map[dataplane.UnitID]uint64{u0: 1, u1: 2})
	seal(s, 2, map[dataplane.UnitID]uint64{u0: 1, u1: 5, u2: 7}) // u1 changed, u2 appeared

	diffs, err := s.View().Diff(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 2 {
		t.Fatalf("diff has %d entries, want 2: %+v", len(diffs), diffs)
	}
	if diffs[0].Unit != u1 || diffs[0].From.Value != 2 || diffs[0].To.Value != 5 {
		t.Fatalf("diff[0] = %+v, want u1 2->5", diffs[0])
	}
	if diffs[1].Unit != u2 || diffs[1].From.Present || diffs[1].To.Value != 7 {
		t.Fatalf("diff[1] = %+v, want u2 absent->7", diffs[1])
	}
}

func TestEmptyView(t *testing.T) {
	s := snapstore.New(snapstore.Config{})
	v := s.View()
	if v.Len() != 0 || v.Latest() != nil {
		t.Fatal("fresh store should publish an empty view")
	}
	if _, err := v.State(1); err == nil {
		t.Fatal("State on empty view should error")
	}
}

func TestHealthCheckAndLag(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := snapstore.New(snapstore.Config{Registry: reg})
	u := unit(0, 0, dataplane.Ingress)

	var completed uint64
	check := snapstore.HealthCheck(s, func() uint64 { return completed }, 2)

	if err := check(); err != nil {
		t.Fatalf("fresh store should be healthy: %v", err)
	}
	completed = 3 // observer completed 3, store sealed 0 -> lag 3 > 2
	if err := check(); err == nil {
		t.Fatal("lag 3 with max 2 should fail readiness")
	}
	seal(s, 1, map[dataplane.UnitID]uint64{u: 1})
	if err := check(); err != nil { // lag 2 == max 2: healthy
		t.Fatalf("lag at threshold should pass: %v", err)
	}
	s.RecordLag(completed)
	if got := gaugeValue(t, reg, "speedlight_snapstore_lag_epochs"); got != 2 {
		t.Fatalf("lag gauge = %d, want 2", got)
	}
}

func gaugeValue(t *testing.T, reg *telemetry.Registry, name string) int64 {
	t.Helper()
	for _, s := range reg.Gather() {
		if s.Name == name {
			return s.GaugeValue
		}
	}
	t.Fatalf("gauge %s not registered", name)
	return 0
}

// TestDeltaPropertyRandom is the delta-correctness property test: a
// long random campaign of epochs (units churning in and out, values
// repeating and changing) is driven through the store while a naive
// full-materialization reference records every cut. Every retained
// epoch, reconstructed through base + delta chains — including across
// retention/compaction boundaries and promoted heads — must match the
// reference exactly.
func TestDeltaPropertyRandom(t *testing.T) {
	configs := []snapstore.Config{
		{Retention: 16, CheckpointEvery: 4},
		{Retention: 7, CheckpointEvery: 5},   // retention not a multiple of cadence
		{Retention: 3, CheckpointEvery: 64},  // compaction promotes almost every seal
		{Retention: 128, CheckpointEvery: 1}, // every epoch a base
	}
	units := make([]dataplane.UnitID, 24)
	for i := range units {
		dir := dataplane.Ingress
		if i%2 == 1 {
			dir = dataplane.Egress
		}
		units[i] = unit(i/6, i%6, dir)
	}
	for ci, cfg := range configs {
		rng := rand.New(rand.NewSource(int64(1000 + ci)))
		s := snapstore.New(cfg)
		reference := map[packet.SeqID]map[dataplane.UnitID]uint64{}
		for epoch := 1; epoch <= 200; epoch++ {
			id := packet.SeqID(epoch)
			cut := map[dataplane.UnitID]uint64{}
			for _, u := range units {
				if rng.Intn(10) == 0 {
					continue // unit drops out of this cut
				}
				// Small value range forces frequent unchanged registers
				// (the elision path) and frequent changes.
				cut[u] = uint64(rng.Intn(4))
			}
			seal(s, id, cut)
			reference[id] = cut

			// Check every retained epoch against the reference.
			v := s.View()
			for _, e := range v.Epochs() {
				want := reference[e.ID]
				st, err := v.State(e.ID)
				if err != nil {
					t.Fatalf("cfg %d: retained epoch %d failed to reconstruct: %v", ci, e.ID, err)
				}
				got := map[dataplane.UnitID]uint64{}
				for i, r := range st.Regs {
					if r.Present {
						got[st.Units[i]] = r.Value
					}
				}
				if len(got) != len(want) {
					t.Fatalf("cfg %d epoch %d: %d present units, want %d", ci, e.ID, len(got), len(want))
				}
				for u, wv := range want {
					if gv, ok := got[u]; !ok || gv != wv {
						t.Fatalf("cfg %d epoch %d unit %v: got %d (present=%v), want %d", ci, e.ID, u, gv, ok, wv)
					}
				}
			}
			if v.Len() > cfg.Retention {
				t.Fatalf("cfg %d: view holds %d epochs, retention %d", ci, v.Len(), cfg.Retention)
			}
		}
	}
}

// TestObserveSteadyStateAllocs pins the ingestion hot path at zero
// allocations once every unit is registered (the hotalloc analyzer
// enforces the same statically via //speedlight:hotpath).
//
//speedlight:allocgate snapstore.Store.Observe
func TestObserveSteadyStateAllocs(t *testing.T) {
	s := snapstore.New(snapstore.Config{Retention: 4, CheckpointEvery: 4})
	units := make([]dataplane.UnitID, 64)
	for i := range units {
		units[i] = unit(i/8, i%8, dataplane.Ingress)
	}
	// Warm up: register every unit, grow the delta buffer.
	for e := 1; e <= 3; e++ {
		s.Begin(packet.SeqID(e), 0)
		for i, u := range units {
			s.Observe(u, uint64(e*100+i), true)
		}
		s.Seal(0, true, nil, 0)
	}
	s.Begin(100, 0)
	defer s.Seal(0, true, nil, 0)
	var x uint64
	allocs := testing.AllocsPerRun(1000, func() {
		x++
		s.Observe(units[int(x)%len(units)], x, true)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %.1f/op in steady state, want 0", allocs)
	}
}
