package snapstore

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"

	"speedlight/internal/packet"
)

// epochJSON is the list-endpoint DTO: one sealed epoch's metadata.
type epochJSON struct {
	Epoch       uint64  `json:"epoch"`
	Seq         uint64  `json:"seq"`
	ScheduledNS int64   `json:"scheduled_ns"`
	CompletedNS int64   `json:"completed_ns"`
	SyncNS      int64   `json:"sync_ns"`
	Consistent  bool    `json:"consistent"`
	Excluded    []int64 `json:"excluded,omitempty"`
	Deltas      int     `json:"deltas"`
	Base        bool    `json:"base"`
}

func epochToJSON(e *Epoch) epochJSON {
	j := epochJSON{
		Epoch:       uint64(e.ID),
		Seq:         e.Seq,
		ScheduledNS: int64(e.ScheduledAt),
		CompletedNS: int64(e.CompletedAt),
		SyncNS:      int64(e.Sync),
		Consistent:  e.Consistent,
		Deltas:      len(e.deltas),
		Base:        e.IsBase(),
	}
	for _, n := range e.Excluded {
		j.Excluded = append(j.Excluded, int64(n))
	}
	return j
}

// regJSON is one unit's register in a reconstructed cut.
type regJSON struct {
	Unit       string `json:"unit"`
	Value      uint64 `json:"value"`
	Consistent bool   `json:"consistent"`
}

// stateJSON is the ?epoch=N DTO: metadata plus the reconstructed cut.
type stateJSON struct {
	epochJSON
	Units []regJSON `json:"units"`
}

// diffJSON is the /snapshots/diff DTO.
type diffJSON struct {
	From    uint64        `json:"from"`
	To      uint64        `json:"to"`
	Changed []regDiffJSON `json:"changed"`
}

type regDiffJSON struct {
	Unit string    `json:"unit"`
	From *regState `json:"from,omitempty"`
	To   *regState `json:"to,omitempty"`
}

type regState struct {
	Value      uint64 `json:"value"`
	Consistent bool   `json:"consistent"`
}

// HTTPHandler serves the snapshot query plane from src's views. Routes
// (relative to the mount point, normally /snapshots):
//
//	GET /snapshots            — retained epochs, newest last (metadata)
//	GET /snapshots?epoch=N    — epoch N's reconstructed consistent cut
//	GET /snapshots/diff?from=A&to=B — registers that changed from A to B
//
// Every request loads one immutable view, so the response is a
// consistent cut even while the store seals new epochs concurrently.
// A nil src yields 503s (no store attached).
func HTTPHandler(src func() *View) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if src == nil {
			http.Error(w, "no snapshot store attached", http.StatusServiceUnavailable)
			return
		}
		v := src()
		if strings.HasSuffix(r.URL.Path, "/diff") {
			serveDiff(w, r, v)
			return
		}
		if es := r.URL.Query().Get("epoch"); es != "" {
			serveState(w, r, v, es)
			return
		}
		serveList(w, v)
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best effort; client gone
}

func serveList(w http.ResponseWriter, v *View) {
	out := struct {
		Retained int         `json:"retained"`
		Epochs   []epochJSON `json:"epochs"`
	}{Retained: v.Len(), Epochs: []epochJSON{}}
	for _, e := range v.Epochs() {
		out.Epochs = append(out.Epochs, epochToJSON(e))
	}
	writeJSON(w, out)
}

func serveState(w http.ResponseWriter, r *http.Request, v *View, es string) {
	id, err := strconv.ParseUint(es, 10, 64)
	if err != nil {
		http.Error(w, "bad epoch: "+es, http.StatusBadRequest)
		return
	}
	st, err := v.State(packet.SeqID(id))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	out := stateJSON{epochJSON: epochToJSON(st.Epoch), Units: []regJSON{}}
	for i, reg := range st.Regs {
		if !reg.Present {
			continue
		}
		out.Units = append(out.Units, regJSON{
			Unit:       st.Units[i].String(),
			Value:      reg.Value,
			Consistent: reg.Consistent,
		})
	}
	writeJSON(w, out)
}

func serveDiff(w http.ResponseWriter, r *http.Request, v *View) {
	q := r.URL.Query()
	from, err1 := strconv.ParseUint(q.Get("from"), 10, 64)
	to, err2 := strconv.ParseUint(q.Get("to"), 10, 64)
	if err1 != nil || err2 != nil {
		http.Error(w, "diff wants ?from=A&to=B (snapshot IDs)", http.StatusBadRequest)
		return
	}
	diffs, err := v.Diff(packet.SeqID(from), packet.SeqID(to))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	out := diffJSON{From: from, To: to, Changed: []regDiffJSON{}}
	for _, d := range diffs {
		rd := regDiffJSON{Unit: d.Unit.String()}
		if d.From.Present {
			rd.From = &regState{Value: d.From.Value, Consistent: d.From.Consistent}
		}
		if d.To.Present {
			rd.To = &regState{Value: d.To.Value, Consistent: d.To.Consistent}
		}
		out.Changed = append(out.Changed, rd)
	}
	writeJSON(w, out)
}
