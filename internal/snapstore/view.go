package snapstore

import (
	"fmt"

	"speedlight/internal/dataplane"
	"speedlight/internal/packet"
)

// View is an immutable catalogue of sealed epochs, published atomically
// per seal. A view taken once stays valid and internally consistent
// forever: epochs are never mutated after sealing and the epochs slice
// is rebuilt (never appended in place) on every publish. The zero View
// is an empty history.
//
// View invariant: epochs[0], when present, always carries a base, so
// every retained epoch reconstructs without leaving the view.
type View struct {
	epochs []*Epoch // seal order (ascending Seq)
	units  []dataplane.UnitID
}

// Len returns the number of retained epochs.
func (v *View) Len() int { return len(v.epochs) }

// Epochs returns the retained epochs in seal order. The slice is
// shared and must not be modified.
func (v *View) Epochs() []*Epoch { return v.epochs }

// Units returns the store's dense unit table at publish time. Indices
// are stable for the life of the store; the slice is shared and must
// not be modified.
func (v *View) Units() []dataplane.UnitID { return v.units }

// Latest returns the most recently sealed epoch, or nil when empty.
func (v *View) Latest() *Epoch {
	if len(v.epochs) == 0 {
		return nil
	}
	return v.epochs[len(v.epochs)-1]
}

// find returns the index of the epoch with the given snapshot ID, or
// -1 when it is not retained. Scans from the newest end: queries skew
// heavily toward recent epochs.
func (v *View) find(id packet.SeqID) int {
	for i := len(v.epochs) - 1; i >= 0; i-- {
		if v.epochs[i].ID == id {
			return i
		}
	}
	return -1
}

// Epoch returns the retained epoch with the given snapshot ID.
func (v *View) Epoch(id packet.SeqID) (*Epoch, bool) {
	if i := v.find(id); i >= 0 {
		return v.epochs[i], true
	}
	return nil, false
}

// State is one epoch's fully reconstructed consistent cut.
type State struct {
	// Epoch is the cut's metadata (immutable, shared with the view).
	Epoch *Epoch
	// Units is the dense unit table; Regs is parallel to it. Units
	// beyond the epoch's registration horizon read absent.
	Units []dataplane.UnitID
	Regs  []Reg
}

// Value returns one unit's register in the cut.
func (s *State) Value(u dataplane.UnitID) (Reg, bool) {
	for i, cand := range s.Units {
		if cand == u {
			if i >= len(s.Regs) || !s.Regs[i].Present {
				return Reg{}, false
			}
			return s.Regs[i], true
		}
	}
	return Reg{}, false
}

// State reconstructs the consistent cut at the epoch with the given
// snapshot ID: the nearest base at or before it, plus every delta set
// up to and including it. The returned Regs slice is freshly
// allocated and owned by the caller.
func (v *View) State(id packet.SeqID) (*State, error) {
	i := v.find(id)
	if i < 0 {
		return nil, fmt.Errorf("snapstore: epoch %d not retained", id)
	}
	return v.stateAt(i), nil
}

// stateAt reconstructs the cut at epoch index i. The view invariant
// (epochs[0] is a base) guarantees the backward walk terminates.
func (v *View) stateAt(i int) *State {
	e := v.epochs[i]
	// Walk back to the nearest base.
	b := i
	for b > 0 && !v.epochs[b].IsBase() {
		b--
	}
	base := v.epochs[b]
	if base.base == nil {
		panic(fmt.Sprintf("snapstore: view invariant broken — no base at or before epoch %d", e.ID))
	}
	regs := make([]Reg, e.nUnits)
	copy(regs, base.base)
	// Apply delta sets forward, (b, i]. Applying epoch b's own deltas
	// would double-apply: a base already includes them.
	for j := b + 1; j <= i; j++ {
		for _, d := range v.epochs[j].deltas {
			if int(d.Unit) >= len(regs) {
				continue // registered after e sealed; absent from e's cut
			}
			if d.Present {
				regs[d.Unit] = Reg{Value: d.Value, Consistent: d.Consistent, Present: true}
			} else {
				regs[d.Unit] = Reg{}
			}
		}
	}
	return &State{Epoch: e, Units: v.units, Regs: regs}
}

// RegDiff is one unit's register change between two cuts.
type RegDiff struct {
	Unit     dataplane.UnitID
	From, To Reg
}

// Diff reconstructs both cuts and returns the registers that differ,
// in dense unit order. from and to may be in either order and need not
// be adjacent.
func (v *View) Diff(from, to packet.SeqID) ([]RegDiff, error) {
	a, err := v.State(from)
	if err != nil {
		return nil, err
	}
	b, err := v.State(to)
	if err != nil {
		return nil, err
	}
	n := len(a.Regs)
	if len(b.Regs) > n {
		n = len(b.Regs)
	}
	var out []RegDiff
	for i := 0; i < n; i++ {
		var ra, rb Reg
		if i < len(a.Regs) {
			ra = a.Regs[i]
		}
		if i < len(b.Regs) {
			rb = b.Regs[i]
		}
		if ra != rb {
			out = append(out, RegDiff{Unit: v.units[i], From: ra, To: rb})
		}
	}
	return out, nil
}
