package core

// Test-only exports of the wraparound arithmetic.

// WrapForTest exposes wrap.
func (u *Unit) WrapForTest(id uint64) uint32 { return u.wrap(id) }

// UnwrapForTest exposes unwrap.
func (u *Unit) UnwrapForTest(wire uint32, ref uint64) uint64 { return u.unwrap(wire, ref) }
