package core

// Test-only exports of the wraparound arithmetic.

import "speedlight/internal/packet"

// WrapForTest exposes wrap.
func (u *Unit) WrapForTest(id packet.SeqID) packet.WireID { return u.wrap(id) }

// UnwrapForTest exposes unwrap.
func (u *Unit) UnwrapForTest(wire packet.WireID, ref packet.SeqID) packet.SeqID {
	return u.unwrap(wire, ref)
}
