package core_test

import (
	"testing"

	"speedlight/internal/core"
	"speedlight/internal/counters"
	"speedlight/internal/packet"
)

// TestOnPacketAllocs pins the protocol inner loop at zero allocations
// per packet — the contract the //speedlight:hotpath marker and the
// hotalloc analyzer enforce statically.
//
//speedlight:allocgate core.Unit.OnPacket
func TestOnPacketAllocs(t *testing.T) {
	u, err := core.NewUnit(core.Config{
		MaxID: 256, WrapAround: true, ChannelState: true,
		NumChannels: 2, CPChannel: 1,
	}, &counters.PacketCount{})
	if err != nil {
		t.Fatal(err)
	}
	pkt := &packet.Packet{
		HasSnap: true,
		Snap:    packet.SnapshotHeader{Type: packet.TypeData},
	}
	var i uint64
	if n := testing.AllocsPerRun(10000, func() {
		pkt.Snap.ID = packet.WireIDFromRaw(uint32((i / 1024) % 256))
		i++
		u.OnPacket(pkt, 0)
	}); n != 0 {
		t.Fatalf("OnPacket allocates %v per packet, want 0", n)
	}
}
