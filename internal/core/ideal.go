package core

import (
	"speedlight/internal/packet"
)

// IdealUnit is the idealized per-processing-unit snapshot algorithm of
// Figure 3: unbounded snapshot IDs, loop-through of skipped epochs, and
// unbounded snapshot storage. It cannot run on a line-rate ASIC, but it
// defines the semantics the hardware-approximate Unit must match in the
// cases the control plane reports as consistent. Tests use it as a
// differential oracle.
type IdealUnit struct {
	metric       Metric
	channelState bool

	sid      packet.SeqID
	lastSeen map[int]packet.SeqID
	snaps    map[packet.SeqID]uint64
}

// NewIdealUnit creates an idealized unit. channelState selects between
// the onReceiveCS and onReceiveNoCS variants of Figure 3.
func NewIdealUnit(metric Metric, channelState bool) *IdealUnit {
	return &IdealUnit{
		metric:       metric,
		channelState: channelState,
		lastSeen:     make(map[int]packet.SeqID),
		snaps:        make(map[packet.SeqID]uint64),
	}
}

// OnPacket processes a packet arriving on the given channel, following
// Figure 3 line by line. Snapshot IDs are unwrapped: the ideal algorithm
// has no register-width limits.
func (u *IdealUnit) OnPacket(pkt *packet.Packet, channel int) {
	if !pkt.HasSnap {
		panic("core: IdealUnit.OnPacket without snapshot header")
	}
	// The ideal algorithm has no register-width limits: the wire ID is
	// taken at face value, with no rollover to resolve.
	psid := Unwrap(pkt.Snap.ID, 0, 0, false)
	state := u.metric.Read()

	if psid > u.sid {
		// New snapshot: every epoch between the local ID and the
		// packet's ID snapshots the same local state (lines 4-6).
		for i := u.sid + 1; i <= psid; i++ {
			u.snaps[i] = state
		}
		u.sid = psid
	} else if psid < u.sid && u.channelState && pkt.Snap.Type == packet.TypeData {
		// In-flight packet: update channel state of every snapshot the
		// packet's send precedes (lines 9-10).
		for i := psid + 1; i <= u.sid; i++ {
			u.snaps[i] = u.metric.Absorb(u.snaps[i], pkt)
		}
	}
	if u.channelState {
		if psid > u.lastSeen[channel] {
			u.lastSeen[channel] = psid
		}
	}

	// Update state and stamp the outgoing ID (lines 13, 20).
	if pkt.Snap.Type == packet.TypeData {
		u.metric.Update(pkt)
	}
	pkt.Snap.ID = Wrap(u.sid, 0, false)
}

// SID returns the unit's current snapshot ID.
func (u *IdealUnit) SID() packet.SeqID { return u.sid }

// Snapshot returns the recorded value for a snapshot ID.
func (u *IdealUnit) Snapshot(id packet.SeqID) (uint64, bool) {
	v, ok := u.snaps[id]
	return v, ok
}

// MinLastSeen returns the smallest last-seen ID over the channels that
// have delivered at least one packet; snapshots up to it are complete
// (Figure 3, line 12). It returns the current SID when channel state is
// disabled or nothing has been received.
func (u *IdealUnit) MinLastSeen() packet.SeqID {
	if !u.channelState || len(u.lastSeen) == 0 {
		return u.sid
	}
	min := packet.SeqID(1<<63 - 1)
	for _, ls := range u.lastSeen {
		if ls < min {
			min = ls
		}
	}
	return min
}
