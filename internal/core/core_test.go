package core

import (
	"math/rand"
	"testing"

	"speedlight/internal/packet"
)

// pktCount is a minimal packet-count metric for tests; the real
// implementations live in internal/counters, which cannot be imported
// here without a cycle.
type pktCount struct{ n uint64 }

func (c *pktCount) Read() uint64                             { return c.n }
func (c *pktCount) Update(*packet.Packet)                    { c.n++ }
func (c *pktCount) Absorb(v uint64, _ *packet.Packet) uint64 { return v + 1 }

func testCfg(mod func(*Config)) Config {
	cfg := Config{
		MaxID:        256,
		WrapAround:   true,
		ChannelState: true,
		NumChannels:  2,
		CPChannel:    1,
	}
	if mod != nil {
		mod(&cfg)
	}
	return cfg
}

func mustUnit(t *testing.T, cfg Config, m Metric) *Unit {
	t.Helper()
	u, err := NewUnit(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func dataPkt(sid packet.WireID, ch uint16) *packet.Packet {
	return &packet.Packet{
		Size:    100,
		HasSnap: true,
		Snap:    packet.SnapshotHeader{Type: packet.TypeData, ID: sid, Channel: ch},
	}
}

func initPkt(sid packet.WireID) *packet.Packet {
	return &packet.Packet{
		HasSnap: true,
		Snap:    packet.SnapshotHeader{Type: packet.TypeInitiation, ID: sid},
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{MaxID: 1, NumChannels: 1, CPChannel: -1},
		{MaxID: 4, NumChannels: 0, CPChannel: -1},
		{MaxID: 4, NumChannels: 2, CPChannel: 2},
	}
	for i, cfg := range cases {
		if _, err := NewUnit(cfg, &pktCount{}); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := NewUnit(testCfg(nil), nil); err == nil {
		t.Error("nil metric accepted")
	}
}

func TestSnapshotTriggeredByHigherID(t *testing.T) {
	m := &pktCount{}
	u := mustUnit(t, testCfg(nil), m)

	// Three packets in epoch 0.
	for i := 0; i < 3; i++ {
		u.OnPacket(dataPkt(0, 0), 0)
	}
	// A packet carrying ID 1 triggers the snapshot. The snapshot must
	// record the state BEFORE this packet (its send was post-snapshot
	// upstream).
	p := dataPkt(1, 0)
	n, changed := u.OnPacket(p, 0)
	if !changed || !n.SIDChanged() {
		t.Fatal("expected SID change notification")
	}
	if u.CurrentSID() != 1 {
		t.Errorf("sid = %d", u.CurrentSID())
	}
	v, ok := u.RegSnapshot(1)
	if !ok {
		t.Fatal("snapshot 1 not recorded")
	}
	if v != 3 {
		t.Errorf("snapshot value = %d, want 3 (must exclude the triggering packet)", v)
	}
	if m.Read() != 4 {
		t.Errorf("counter = %d, want 4", m.Read())
	}
	if p.Snap.ID != 1 {
		t.Errorf("outgoing header ID = %d", p.Snap.ID)
	}
}

func TestOutgoingHeaderStampedWithLocalID(t *testing.T) {
	u := mustUnit(t, testCfg(nil), &pktCount{})
	u.OnPacket(dataPkt(5, 0), 0) // advance to 5
	// An in-flight packet (old epoch) leaves stamped with the local ID.
	p := dataPkt(3, 0)
	// Channel 0 lastSeen is 5 now; a lower wire ID on the same channel
	// would violate FIFO. Use a fresh unit to model a second channel.
	u2 := mustUnit(t, testCfg(func(c *Config) { c.NumChannels = 3; c.CPChannel = 2 }), &pktCount{})
	u2.OnPacket(dataPkt(5, 0), 0)
	u2.OnPacket(p, 1)
	if p.Snap.ID != 5 {
		t.Errorf("in-flight packet restamped with %d, want 5", p.Snap.ID)
	}
}

func TestInFlightAbsorbedIntoChannelState(t *testing.T) {
	cfg := testCfg(func(c *Config) { c.NumChannels = 3; c.CPChannel = 2 })
	m := &pktCount{}
	u := mustUnit(t, cfg, m)

	// Two packets pre-snapshot on channel 0.
	u.OnPacket(dataPkt(0, 0), 0)
	u.OnPacket(dataPkt(0, 0), 0)
	// Epoch 1 arrives on channel 0.
	u.OnPacket(dataPkt(1, 0), 0)
	if v, _ := u.RegSnapshot(1); v != 2 {
		t.Fatalf("snapshot = %d, want 2", v)
	}
	// An in-flight packet (epoch 0) arrives on channel 1: the recorded
	// snapshot absorbs it.
	u.OnPacket(dataPkt(0, 1), 1)
	if v, _ := u.RegSnapshot(1); v != 3 {
		t.Errorf("snapshot after absorb = %d, want 3", v)
	}
	// The unit's live counter includes all four packets.
	if m.Read() != 4 {
		t.Errorf("counter = %d", m.Read())
	}
}

func TestNoAbsorbWithoutChannelState(t *testing.T) {
	cfg := testCfg(func(c *Config) {
		c.ChannelState = false
		c.NumChannels = 3
		c.CPChannel = 2
	})
	u := mustUnit(t, cfg, &pktCount{})
	u.OnPacket(dataPkt(0, 0), 0)
	u.OnPacket(dataPkt(1, 0), 0)
	u.OnPacket(dataPkt(0, 1), 1) // in-flight, but channel state disabled
	if v, _ := u.RegSnapshot(1); v != 1 {
		t.Errorf("snapshot = %d, want 1 (no channel state)", v)
	}
}

func TestInitiationPacketNotCountedNotAbsorbed(t *testing.T) {
	cfg := testCfg(func(c *Config) { c.NumChannels = 3; c.CPChannel = 2 })
	m := &pktCount{}
	u := mustUnit(t, cfg, m)
	u.OnPacket(dataPkt(0, 0), 0)

	// Initiation for epoch 1 from the CPU.
	n, changed := u.OnPacket(initPkt(1), 2)
	if !changed || !n.SIDChanged() {
		t.Fatal("initiation should advance the SID")
	}
	if m.Read() != 1 {
		t.Errorf("initiation counted: %d", m.Read())
	}
	if v, _ := u.RegSnapshot(1); v != 1 {
		t.Errorf("snapshot = %d, want 1", v)
	}
	// A stale initiation (epoch 0) must not be absorbed as in-flight.
	u.OnPacket(initPkt(0), 2)
	if v, _ := u.RegSnapshot(1); v != 1 {
		t.Errorf("stale initiation absorbed into channel state: %d", v)
	}
}

func TestDuplicateInitiationIgnored(t *testing.T) {
	u := mustUnit(t, testCfg(nil), &pktCount{})
	u.OnPacket(initPkt(1), 1)
	sid := u.CurrentSID()
	_, changed := u.OnPacket(initPkt(1), 1)
	if changed {
		t.Error("duplicate initiation produced a notification")
	}
	if u.CurrentSID() != sid {
		t.Error("duplicate initiation changed SID")
	}
}

func TestSkippedEpochSlotsAreUninitialized(t *testing.T) {
	u := mustUnit(t, testCfg(nil), &pktCount{})
	u.OnPacket(dataPkt(0, 0), 0)
	u.OnPacket(dataPkt(3, 0), 0) // jump 0 -> 3
	if _, ok := u.RegSnapshot(1); ok {
		t.Error("skipped epoch 1 has a value")
	}
	if _, ok := u.RegSnapshot(2); ok {
		t.Error("skipped epoch 2 has a value")
	}
	if v, ok := u.RegSnapshot(3); !ok || v != 1 {
		t.Errorf("epoch 3 = (%d,%v), want (1,true)", v, ok)
	}
}

func TestLastSeenTracking(t *testing.T) {
	cfg := testCfg(func(c *Config) { c.NumChannels = 3; c.CPChannel = 2 })
	u := mustUnit(t, cfg, &pktCount{})
	u.OnPacket(dataPkt(2, 0), 0)
	if u.LastSeenUnwrapped(0) != 2 {
		t.Errorf("lastSeen[0] = %d", u.LastSeenUnwrapped(0))
	}
	if u.LastSeenUnwrapped(1) != 0 {
		t.Errorf("lastSeen[1] = %d", u.LastSeenUnwrapped(1))
	}
	if u.MinLastSeen() != 0 {
		t.Errorf("MinLastSeen = %d", u.MinLastSeen())
	}
	u.OnPacket(dataPkt(2, 1), 1)
	if u.MinLastSeen() != 2 {
		t.Errorf("MinLastSeen = %d, want 2", u.MinLastSeen())
	}
}

func TestMinLastSeenExcludesCPChannel(t *testing.T) {
	cfg := testCfg(func(c *Config) { c.NumChannels = 2; c.CPChannel = 1 })
	u := mustUnit(t, cfg, &pktCount{})
	// CP initiates epoch 5; external channel still at 0.
	u.OnPacket(initPkt(5), 1)
	if u.LastSeenUnwrapped(1) != 5 {
		t.Errorf("CP lastSeen = %d", u.LastSeenUnwrapped(1))
	}
	// Completion must not be gated on the CP channel, nor unlocked by it:
	// the external channel has seen nothing.
	if u.MinLastSeen() != 0 {
		t.Errorf("MinLastSeen = %d, want 0", u.MinLastSeen())
	}
}

func TestWraparound(t *testing.T) {
	cfg := testCfg(func(c *Config) { c.MaxID = 8 })
	u := mustUnit(t, testCfg(func(c *Config) { c.MaxID = 8 }), &pktCount{})
	_ = cfg
	// Walk the ID through two full laps, one step at a time.
	for i := packet.SeqID(1); i <= 20; i++ {
		wire := Wrap(i, 8, true)
		u.OnPacket(dataPkt(wire, 0), 0)
		if u.CurrentSID() != i {
			t.Fatalf("after wire %d: sid = %d, want %d", wire, u.CurrentSID(), i)
		}
	}
	// The register slot for epoch 20 must be valid; epoch 12 (same slot
	// 4, previous lap) must read as stale.
	if _, ok := u.RegSnapshot(20); !ok {
		t.Error("epoch 20 missing")
	}
	if _, ok := u.RegSnapshot(12); ok {
		t.Error("epoch 12 readable after slot reuse (stale lap)")
	}
}

func TestNoWraparoundUsesFullIDSpace(t *testing.T) {
	cfg := testCfg(func(c *Config) { c.WrapAround = false; c.MaxID = 4 })
	u := mustUnit(t, cfg, &pktCount{})
	u.OnPacket(dataPkt(1000, 0), 0)
	if u.CurrentSID() != 1000 {
		t.Errorf("sid = %d, want 1000", u.CurrentSID())
	}
	if _, ok := u.RegSnapshot(1000); !ok {
		t.Error("snapshot 1000 missing")
	}
}

func TestNotificationCarriesFormerValues(t *testing.T) {
	u := mustUnit(t, testCfg(nil), &pktCount{})
	u.OnPacket(dataPkt(1, 0), 0)
	n, changed := u.OnPacket(dataPkt(2, 0), 0)
	if !changed {
		t.Fatal("no notification")
	}
	if n.OldSID != 1 || n.NewSID != 2 {
		t.Errorf("SID %d->%d, want 1->2", n.OldSID, n.NewSID)
	}
	if n.OldLastSeen != 1 || n.NewLastSeen != 2 {
		t.Errorf("LastSeen %d->%d, want 1->2", n.OldLastSeen, n.NewLastSeen)
	}
	if n.Channel != 0 {
		t.Errorf("Channel = %d", n.Channel)
	}
}

func TestNoNotificationWithoutProgress(t *testing.T) {
	u := mustUnit(t, testCfg(nil), &pktCount{})
	u.OnPacket(dataPkt(1, 0), 0)
	_, changed := u.OnPacket(dataPkt(1, 0), 0) // same epoch, same lastSeen
	if changed {
		t.Error("notification emitted with no state change")
	}
}

func TestPanicsOnMissingHeader(t *testing.T) {
	u := mustUnit(t, testCfg(nil), &pktCount{})
	defer func() {
		if recover() == nil {
			t.Error("no panic on missing header")
		}
	}()
	u.OnPacket(&packet.Packet{}, 0)
}

func TestPanicsOnBadChannel(t *testing.T) {
	u := mustUnit(t, testCfg(nil), &pktCount{})
	defer func() {
		if recover() == nil {
			t.Error("no panic on bad channel")
		}
	}()
	u.OnPacket(dataPkt(0, 0), 5)
}

// TestDifferentialIdealVsHardware drives the hardware-approximate Unit
// and the IdealUnit with identical smooth traffic (IDs never skip) and
// requires identical snapshot values: in the cases the control plane
// reports consistent, the approximation must be exact.
func TestDifferentialIdealVsHardware(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		cfg := testCfg(func(c *Config) {
			c.NumChannels = 3
			c.CPChannel = 2
			c.MaxID = 16 // force wraparound coverage
		})
		hwM, idM := &pktCount{}, &pktCount{}
		hw := mustUnit(t, cfg, hwM)
		id := NewIdealUnit(idM, true)

		// Per-channel epoch trackers carrying non-decreasing IDs. The
		// epoch advances only when every channel has caught up, so no
		// channel ever lags by more than 1: the smooth regime in which
		// the hardware approximation must be *exact*. (Lag beyond 1 is
		// the inconsistent regime, covered by TestTwoUnitCutInvariant.)
		chEpoch := []packet.SeqID{0, 0}
		epoch := packet.SeqID(0)
		for step := 0; step < 400; step++ {
			ch := r.Intn(2)
			if r.Float64() < 0.1 && chEpoch[0] == epoch && chEpoch[1] == epoch {
				epoch++
			}
			// This channel sends either its current (lagging by at most
			// one) epoch or catches up to the global one.
			if r.Float64() < 0.7 {
				chEpoch[ch] = epoch
			}
			sid := chEpoch[ch]
			hwP := dataPkt(Wrap(sid, cfg.MaxID, true), uint16(ch))
			idP := dataPkt(Wrap(sid, 0, false), uint16(ch))
			hw.OnPacket(hwP, ch)
			id.OnPacket(idP, ch)
		}
		if hw.CurrentSID() != id.SID() {
			t.Fatalf("trial %d: sid diverged: hw=%d ideal=%d", trial, hw.CurrentSID(), id.SID())
		}
		// Every complete snapshot the hardware still holds must match
		// the ideal value. Complete means all (non-CP) channels have
		// seen it; only then has all channel state been absorbed.
		done := hw.MinLastSeen()
		for i := packet.SeqID(1); i <= done; i++ {
			hv, hok := hw.RegSnapshot(i)
			iv, iok := id.Snapshot(i)
			if !iok {
				t.Fatalf("trial %d: ideal missing snapshot %d", trial, i)
			}
			if !hok {
				continue // overwritten by a later lap; allowed
			}
			if hv != iv {
				t.Fatalf("trial %d: snapshot %d: hw=%d ideal=%d", trial, i, hv, iv)
			}
		}
	}
}

// TestTwoUnitCutInvariant is the protocol's core guarantee in miniature:
// a sender unit A feeding a FIFO queue into a receiver unit B. For every
// complete snapshot i, the packets counted pre-snapshot at A equal the
// packets counted pre-snapshot at B plus the in-flight channel state B
// absorbed — i.e., the cut is causally consistent and no packet is lost
// or double-counted across it (Section 2.2's "impossible states" never
// appear).
func TestTwoUnitCutInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		cfgA := testCfg(func(c *Config) { c.MaxID = 32 })
		cfgB := testCfg(func(c *Config) { c.MaxID = 32 })
		mA, mB := &pktCount{}, &pktCount{}
		a := mustUnit(t, cfgA, mA)
		b := mustUnit(t, cfgB, mB)

		var queue []*packet.Packet // FIFO channel A -> B
		epoch := packet.SeqID(0)

		// Figure 7: when a unit's snapshot ID advances while older
		// snapshots are incomplete (min lastSeen below the new ID),
		// those older snapshots can still receive in-flight packets
		// that the hardware will absorb into the *current* slot only.
		// The control plane marks them inconsistent; replicate that
		// marking for B, the only unit receiving in-flight traffic.
		inconsistent := map[packet.SeqID]bool{}
		bOnPacket := func(p *packet.Packet, ch int) {
			before := b.MinLastSeen()
			oldSID := b.CurrentSID()
			b.OnPacket(p, ch)
			if newSID := b.CurrentSID(); newSID > oldSID {
				for i := before + 1; i < newSID; i++ {
					inconsistent[i] = true
				}
			}
		}

		deliver := func() {
			if len(queue) == 0 {
				return
			}
			p := queue[0]
			queue = queue[1:]
			bOnPacket(p, 0)
		}
		send := func() {
			p := dataPkt(Wrap(epoch, 32, true), 0)
			a.OnPacket(p, 0) // A stamps its current epoch
			queue = append(queue, p)
		}
		initiate := func() {
			// Multi-initiator: the control planes initiate at both A
			// and B near-simultaneously (Section 6), one epoch at a
			// time (the consistent regime).
			if a.CurrentSID() == epoch && b.CurrentSID() >= epoch {
				epoch++
				a.OnPacket(initPkt(Wrap(epoch, 32, true)), 1)
				bOnPacket(initPkt(Wrap(epoch, 32, true)), 1)
			}
		}

		for step := 0; step < 1000; step++ {
			switch x := r.Float64(); {
			case x < 0.45:
				send()
			case x < 0.9:
				deliver()
			default:
				initiate()
			}
		}
		// Drain the channel so every snapshot completes at B.
		for len(queue) > 0 {
			deliver()
		}
		send() // push A's final epoch marker through
		deliver()

		done := b.MinLastSeen()
		if done < epoch && epoch > 0 {
			// B has seen A's final epoch after the drain.
			t.Fatalf("trial %d: B incomplete: done=%d epoch=%d", trial, done, epoch)
		}
		checked := 0
		for i := packet.SeqID(1); i <= epoch; i++ {
			if inconsistent[i] {
				continue // Figure 7 would discard this snapshot
			}
			av, aok := a.RegSnapshot(i)
			bv, bok := b.RegSnapshot(i)
			if !aok || !bok {
				continue // lap-overwritten; not readable anymore
			}
			checked++
			if av != bv {
				t.Fatalf("trial %d: cut invariant violated at snapshot %d: A sent %d pre-cut, B accounted %d",
					trial, i, av, bv)
			}
		}
		if epoch > 4 && checked == 0 {
			t.Fatalf("trial %d: no consistent snapshot checked (epoch=%d) — test is vacuous", trial, epoch)
		}
	}
}

func TestIdealUnitLoopsThroughSkippedEpochs(t *testing.T) {
	m := &pktCount{}
	u := NewIdealUnit(m, true)
	u.OnPacket(dataPkt(0, 0), 0)
	u.OnPacket(dataPkt(0, 0), 0)
	u.OnPacket(dataPkt(3, 0), 0) // jump: ideal fills 1,2,3 with the same state
	for i := packet.SeqID(1); i <= 3; i++ {
		v, ok := u.Snapshot(i)
		if !ok || v != 2 {
			t.Errorf("ideal snapshot %d = (%d,%v), want (2,true)", i, v, ok)
		}
	}
	// An in-flight epoch-0 packet updates channel state of 1..3.
	u.OnPacket(dataPkt(0, 1), 1)
	for i := packet.SeqID(1); i <= 3; i++ {
		if v, _ := u.Snapshot(i); v != 3 {
			t.Errorf("ideal snapshot %d after absorb = %d, want 3", i, v)
		}
	}
}

func TestIdealUnitNoChannelState(t *testing.T) {
	u := NewIdealUnit(&pktCount{}, false)
	u.OnPacket(dataPkt(0, 0), 0)
	u.OnPacket(dataPkt(1, 0), 0)
	u.OnPacket(dataPkt(0, 1), 1) // would-be in-flight: ignored
	if v, _ := u.Snapshot(1); v != 1 {
		t.Errorf("snapshot = %d, want 1", v)
	}
	if u.MinLastSeen() != u.SID() {
		t.Error("MinLastSeen should equal SID without channel state")
	}
}

func TestNodeAttachmentJumpsForward(t *testing.T) {
	// A freshly attached unit (all state zero) jumps to the network's
	// current snapshot ID on first traffic (Section 6).
	u := mustUnit(t, testCfg(nil), &pktCount{})
	u.OnPacket(dataPkt(40, 0), 0)
	if u.CurrentSID() != 40 {
		t.Errorf("sid = %d, want 40", u.CurrentSID())
	}
}

func TestStaleInitiationIgnoredUnderWraparound(t *testing.T) {
	// Section 6: duplicate and outdated control-plane initiations are
	// ignored by the data plane. With wraparound, an outdated wire ID
	// must resolve as "behind", never as a forward rollover lap.
	u := mustUnit(t, testCfg(func(c *Config) { c.MaxID = 8 }), &pktCount{})
	u.OnPacket(initPkt(3), 1)
	if u.CurrentSID() != 3 {
		t.Fatalf("sid = %d", u.CurrentSID())
	}
	// A delayed retry for snapshot 2 arrives after the unit reached 3.
	_, changed := u.OnPacket(initPkt(2), 1)
	if changed {
		t.Error("stale initiation produced a notification")
	}
	if u.CurrentSID() != 3 {
		t.Errorf("stale initiation moved sid to %d", u.CurrentSID())
	}
	// Even a maximally stale one (wire ID that would unwrap below 0).
	fresh := mustUnit(t, testCfg(func(c *Config) { c.MaxID = 8 }), &pktCount{})
	fresh.OnPacket(initPkt(7), 1) // wire 7 at ref 0: behind by 1, clamped
	if fresh.CurrentSID() != 0 {
		t.Errorf("stale wire ID advanced fresh unit to %d", fresh.CurrentSID())
	}
}

// TestUnwrapProperty pins the serial-number arithmetic: for any
// reference and any true ID within half the ID space of it (ahead or
// behind), wrap followed by unwrap-against-the-reference recovers the
// truth exactly; anything older than the unit has seen clamps to 0.
func TestUnwrapProperty(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for _, maxID := range []uint32{4, 8, 16, 64, 256} {
		u := mustUnit(t, testCfg(func(c *Config) { c.MaxID = maxID }), &pktCount{})
		half := uint64(maxID) / 2
		for trial := 0; trial < 2000; trial++ {
			ref := packet.SeqID(r.Int63n(1 << 30))
			// delta in (-half, half): the resolvable window.
			delta := r.Int63n(int64(2*half)-1) - int64(half) + 1
			truth := int64(ref) + delta
			if truth < 0 {
				continue
			}
			wire := u.WrapForTest(packet.SeqID(truth))
			got := u.UnwrapForTest(wire, ref)
			if got != packet.SeqID(truth) {
				t.Fatalf("maxID=%d ref=%d truth=%d wire=%d: unwrap=%d",
					maxID, ref, truth, wire, got)
			}
		}
		// Behind-by-more-than-ref clamps to zero.
		if got := u.UnwrapForTest(u.WrapForTest(packet.SeqID(maxID)-1), 0); got != 0 {
			t.Errorf("maxID=%d: stale wire did not clamp: %d", maxID, got)
		}
	}
}
