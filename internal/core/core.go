// Package core implements the paper's primary contribution: the
// per-processing-unit network snapshot state machine.
//
// A processing unit is the per-port, per-direction packet processor of a
// switch (Section 4.1). Units are linearizable and connected by FIFO
// channels, which lets a modified multi-initiator Chandy–Lamport
// protocol partition all events into pre- and post-snapshot sets with
// causal consistency (Section 4.2).
//
// Two implementations live here:
//
//   - Unit is the Speedlight data-plane unit (Figures 4 and 5). It is
//     faithful to the match-action hardware's limitations: it cannot
//     loop through skipped snapshot IDs (the control plane marks those
//     inconsistent, Figure 7), it stores snapshots in a bounded register
//     array with optional ID wraparound, and it reports progress to the
//     control plane through notifications.
//
//   - IdealUnit is the idealized algorithm of Figure 3, with unbounded
//     IDs and loop-through of skipped epochs. It exists as an executable
//     specification: tests drive Unit and IdealUnit with the same packet
//     streams and compare results.
//
// Units are pure state machines: no goroutines, no clocks. The
// simulation (internal/emunet) and live (internal/runtime) harnesses
// drive them.
package core

import (
	"fmt"

	"speedlight/internal/packet"
)

// Metric is the local state targeted by a snapshot. The snapshot
// machinery is agnostic to the measured data (Section 3): anything that
// can be read as a register value at line rate can be snapshotted.
//
// Read must return the current state encoded into a register value.
// Update applies a data packet to the state and is orthogonal to the
// snapshot logic. Absorb folds an in-flight packet into a previously
// recorded snapshot value (channel state); metrics for which channel
// state is meaningless (e.g., instantaneous queue depth) can return the
// value unchanged.
type Metric interface {
	Read() uint64
	Update(pkt *packet.Packet)
	Absorb(snapVal uint64, pkt *packet.Packet) uint64
}

// Config describes one processing unit's snapshot support.
type Config struct {
	// MaxID is the size of the snapshot ID space and of the snapshot
	// value register array (the paper's "max snapshot id"). Must be at
	// least 2.
	MaxID uint32
	// WrapAround enables snapshot ID rollover to 0 after MaxID-1
	// (Section 5.3). Without it, IDs live in the full uint32 space and
	// the deployment must stop snapshotting before exhausting them;
	// register slots are still reused modulo MaxID.
	WrapAround bool
	// ChannelState enables in-flight packet recording and the last-seen
	// machinery needed for it (the items marked "-" in Sections 4.2,
	// 5.1 and 5.2).
	ChannelState bool
	// NumChannels is the number of upstream neighbors, including the
	// control plane pseudo-channel. An ingress unit in switched
	// Ethernet has 2 (the external neighbor and the CPU); an egress
	// unit has one per ingress port of the device plus the CPU.
	NumChannels int
	// CPChannel is the index of the control plane's pseudo-channel in
	// the last-seen array. Its entry participates in rollover detection
	// but not in completion (Section 6). Use -1 when the unit has no
	// CPU path.
	CPChannel int
}

func (c Config) validate() error {
	if c.MaxID < 2 {
		return fmt.Errorf("core: MaxID %d < 2", c.MaxID)
	}
	if c.NumChannels < 1 {
		return fmt.Errorf("core: NumChannels %d < 1", c.NumChannels)
	}
	if c.CPChannel >= c.NumChannels {
		return fmt.Errorf("core: CPChannel %d out of range", c.CPChannel)
	}
	return nil
}

// Notification is the data plane's progress report to the control plane
// (Section 5.3). One is exported after any update of the local snapshot
// ID or of a last-seen entry, carrying the former value of the changed
// last-seen entry along with the former and new snapshot ID. Values are
// wrapped, exactly as the hardware registers hold them; the control
// plane unwraps them against its own tracking state.
type Notification struct {
	Channel     int
	OldSID      packet.WireID
	NewSID      packet.WireID
	OldLastSeen packet.WireID
	NewLastSeen packet.WireID

	// Diagnostic shadow of the transition in unwrapped form, plus the
	// in-flight absorption outcome. Hardware exports none of this — it
	// exists for the flight recorder (internal/journal), which needs
	// exact epochs where the wrapped registers are ambiguous across
	// rollover laps. The control plane must keep unwrapping the wrapped
	// fields above, exactly as it would against real hardware.
	OldSIDU   packet.SeqID
	NewSIDU   packet.SeqID
	OldSeenU  packet.SeqID
	NewSeenU  packet.SeqID
	PacketSID packet.SeqID
	// WireID is the snapshot ID the packet arrived with, before any
	// restamping.
	WireID packet.WireID
	// Absorbed reports that the packet was in flight (PacketSID behind
	// the unit's epoch) and was folded into the current slot's channel
	// state; AbsorbMissed that it was in flight but found no open slot.
	Absorbed     bool
	AbsorbMissed bool
}

// SIDChanged reports whether the unit's snapshot ID advanced.
func (n Notification) SIDChanged() bool { return n.OldSID != n.NewSID }

// LastSeenChanged reports whether the last-seen entry advanced.
func (n Notification) LastSeenChanged() bool { return n.OldLastSeen != n.NewLastSeen }

// slot is one entry of the snapshot value register array. id records the
// unwrapped ID the slot was written for. Hardware stores only the
// wrapped form — indistinguishable across rollover laps, which is
// exactly why the observer enforces the no-lapping assumption and the
// control plane reads values promptly (Section 5.3). The unwrapped
// shadow makes RegSnapshot strictly safer than the hardware register
// (a lapped read returns "not held" instead of a later epoch's value)
// without changing behaviour under correct operation.
type slot struct {
	id    packet.SeqID
	valid bool
	value uint64
}

// Unit is a Speedlight data-plane processing unit.
type Unit struct {
	cfg    Config
	metric Metric

	sid      packet.SeqID   // current snapshot ID, unwrapped
	lastSeen []packet.SeqID // per-channel last seen ID, unwrapped
	snaps    []slot         // register array, indexed by sid mod MaxID
}

// NewUnit creates a processing unit with all state zeroed, as when a new
// device attaches to the network (Section 6): its first traffic will
// jump it forward to the network's current snapshot ID.
func NewUnit(cfg Config, metric Metric) (*Unit, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if metric == nil {
		return nil, fmt.Errorf("core: nil metric")
	}
	return &Unit{
		cfg:      cfg,
		metric:   metric,
		lastSeen: make([]packet.SeqID, cfg.NumChannels),
		snaps:    make([]slot, cfg.MaxID),
	}, nil
}

// Config returns the unit's configuration.
func (u *Unit) Config() Config { return u.cfg }

// Metric returns the unit's metric.
func (u *Unit) Metric() Metric { return u.metric }

// Wrap converts an unwrapped snapshot ID to its on-wire / in-register
// form: the ID modulo maxID when rollover is enabled, or a plain
// truncation otherwise (Section 5.3). Together with Unwrap it is the
// only blessed crossing between the ordered SeqID domain and the
// ambiguous WireID domain; the wrappedcmp analyzer flags conversions
// anywhere else.
func Wrap(id packet.SeqID, maxID uint32, wrapAround bool) packet.WireID {
	if wrapAround {
		return packet.WireID(uint64(id) % uint64(maxID))
	}
	return packet.WireID(id)
}

// Unwrap resolves a wire ID against a reference unwrapped ID (a
// last-seen entry or the control plane's tracking state — the rollover
// reference of Section 5.3) using serial-number arithmetic: a forward
// distance below half the ID space means the wire ID is ahead of the
// reference; anything else means it is at or behind it (an in-flight
// packet, or a stale/duplicate control-plane initiation, which must be
// ignored rather than misread as a rollover, Section 6). The observer
// keeps all live IDs within half the space, making the resolution exact.
func Unwrap(wire packet.WireID, ref packet.SeqID, maxID uint32, wrapAround bool) packet.SeqID {
	if !wrapAround {
		return packet.SeqID(wire)
	}
	m := uint64(maxID)
	delta := (uint64(wire) + m - uint64(Wrap(ref, maxID, wrapAround))) % m
	if delta < m/2 {
		return ref + packet.SeqID(delta)
	}
	behind := packet.SeqID(m - delta)
	if behind > ref {
		return 0 // older than anything this unit has seen
	}
	return ref - behind
}

// RolledOver reports whether a wire register that advanced from old to
// new lapped zero (Section 5.3). Unwrapped progress only moves forward,
// so a numerically smaller new register value is exactly a rollover.
// This is the one sanctioned ordering question about wire IDs, and it
// compares raw register values on purpose: callers detecting rollover
// (telemetry, the flight recorder) must not be required to unwrap
// first, since rollover detection is an input to unwrapping.
func RolledOver(old, new packet.WireID) bool {
	return new.Raw() < old.Raw()
}

// wrap converts an unwrapped ID to its on-wire / in-register form.
func (u *Unit) wrap(id packet.SeqID) packet.WireID {
	return Wrap(id, u.cfg.MaxID, u.cfg.WrapAround)
}

// unwrap resolves a wire ID against a reference unwrapped ID.
func (u *Unit) unwrap(wire packet.WireID, ref packet.SeqID) packet.SeqID {
	return Unwrap(wire, ref, u.cfg.MaxID, u.cfg.WrapAround)
}

// slotOf returns the register-array slot an unwrapped ID maps to.
func (u *Unit) slotOf(id packet.SeqID) *slot {
	return &u.snaps[uint64(id)%uint64(u.cfg.MaxID)]
}

// OnPacket runs the snapshot pipeline of Figures 4 and 5 on a packet
// arriving on the given upstream channel. It mutates the packet's
// snapshot header (stamping the unit's current ID for the next hop) and
// returns a notification if the unit's ID or the channel's last-seen
// entry advanced.
//
// The packet must carry a snapshot header; adding headers at the
// snapshot-enabled edge is the data plane wiring's job (Section 5.1).
//
//speedlight:hotpath
func (u *Unit) OnPacket(pkt *packet.Packet, channel int) (Notification, bool) {
	if !pkt.HasSnap {
		panic("core: OnPacket without snapshot header")
	}
	if channel < 0 || channel >= u.cfg.NumChannels {
		panic(fmt.Sprintf("core: channel %d out of range [0,%d)", channel, u.cfg.NumChannels))
	}
	hdr := &pkt.Snap

	// Read the target state before applying this packet: a snapshot
	// triggered by this packet must not include its effects (Figure 3
	// saves state before the final update; see also the proof sketch).
	preState := u.metric.Read()

	oldSID := u.sid
	oldLS := u.lastSeen[channel]
	wireID := hdr.ID

	// Resolve the wire ID against this channel's last-seen entry — the
	// reference that makes rollover detection possible (Section 5.3).
	psid := u.unwrap(hdr.ID, oldLS)
	if psid > u.lastSeen[channel] {
		u.lastSeen[channel] = psid
	}

	var absorbed, absorbMissed bool
	switch {
	case psid > u.sid:
		// New snapshot: save local state for epoch psid. The hardware
		// writes exactly one slot per packet, so epochs skipped over
		// (oldSID+1 .. psid-1) are left unsaved; the control plane
		// recovers them (without channel state) or marks them
		// inconsistent (with channel state), per Figure 7.
		s := u.slotOf(psid)
		s.id = psid
		s.valid = true
		s.value = preState
		u.sid = psid
	case psid < u.sid && u.cfg.ChannelState && hdr.Type == packet.TypeData:
		// In-flight packet: absorb into the *current* snapshot's
		// channel state. Ideally every epoch in (psid, sid] would
		// absorb it, but the ASIC performs one stateful update per
		// register array per packet; intermediate epochs are the
		// inconsistent ones the control plane tracks.
		s := u.slotOf(u.sid)
		if s.valid && s.id == u.sid {
			s.value = u.metric.Absorb(s.value, pkt)
			absorbed = true
		} else {
			absorbMissed = true
		}
	}

	// Update the target state. Initiation messages are control traffic:
	// they are never counted (Section 6).
	if hdr.Type == packet.TypeData {
		u.metric.Update(pkt)
	}

	// Stamp the outgoing header with the (possibly advanced) local ID.
	hdr.ID = u.wrap(u.sid)

	n := Notification{
		Channel:     channel,
		OldSID:      u.wrap(oldSID),
		NewSID:      u.wrap(u.sid),
		OldLastSeen: u.wrap(oldLS),
		NewLastSeen: u.wrap(u.lastSeen[channel]),

		OldSIDU:      oldSID,
		NewSIDU:      u.sid,
		OldSeenU:     oldLS,
		NewSeenU:     u.lastSeen[channel],
		PacketSID:    psid,
		WireID:       wireID,
		Absorbed:     absorbed,
		AbsorbMissed: absorbMissed,
	}
	return n, n.SIDChanged() || n.LastSeenChanged()
}

// Register read-back interface: the control plane reads these over PCIe
// in hardware (Section 7.2), or directly in emulation.

// RegCurrentSID returns the wrapped current snapshot ID register.
func (u *Unit) RegCurrentSID() packet.WireID { return u.wrap(u.sid) }

// RegLastSeen returns the wrapped last-seen register for a channel.
func (u *Unit) RegLastSeen(ch int) packet.WireID { return u.wrap(u.lastSeen[ch]) }

// RegSnapshot returns the snapshot value recorded for the (unwrapped)
// snapshot ID, and whether the register slot actually holds that
// snapshot (a slot is invalid when the epoch was skipped, never
// initiated, or already overwritten by a later lap).
func (u *Unit) RegSnapshot(id packet.SeqID) (uint64, bool) {
	s := u.slotOf(id)
	if !s.valid || s.id != id {
		return 0, false
	}
	return s.value, true
}

// CurrentSID returns the unit's unwrapped snapshot ID. Emulation-side
// observability only; hardware exposes just the wrapped register.
func (u *Unit) CurrentSID() packet.SeqID { return u.sid }

// LastSeenUnwrapped returns the unit's unwrapped last-seen entry.
// Emulation-side observability only.
func (u *Unit) LastSeenUnwrapped(ch int) packet.SeqID { return u.lastSeen[ch] }

// MinLastSeen returns the smallest last-seen ID across channels,
// excluding the control plane pseudo-channel, which participates only in
// rollover detection (Section 6). Snapshots up to this ID are complete
// at this unit (Figure 3, line 12).
func (u *Unit) MinLastSeen() packet.SeqID {
	min := packet.SeqID(1<<63 - 1)
	found := false
	for ch, ls := range u.lastSeen {
		if ch == u.cfg.CPChannel {
			continue
		}
		found = true
		if ls < min {
			min = ls
		}
	}
	if !found {
		return u.sid
	}
	return min
}
