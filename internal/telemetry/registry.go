package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind distinguishes metric families.
type Kind int

// Metric family kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one named metric family: a single unlabeled series or a set
// of labeled series.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string
	bounds []float64 // histograms only

	mu     sync.Mutex
	series map[string]any // label key -> *Counter / *Gauge / *Histogram
	order  []string
}

const labelSep = "\x1f"

func (f *family) get(key string) (any, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.series[key]
	return m, ok
}

func (f *family) getOrCreate(key string) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m
	}
	var m any
	switch f.kind {
	case KindCounter:
		m = &Counter{}
	case KindGauge:
		m = &Gauge{}
	default:
		m = newHistogram(f.bounds)
	}
	f.series[key] = m
	f.order = append(f.order, key)
	return m
}

// Registry holds named metric families. Registration is idempotent:
// asking twice for the same name returns the same metric, so several
// subsystems can share one series. A nil *Registry is the disabled
// state — every constructor on it returns nil metrics, whose updates
// are no-ops.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family returns the named family, creating it on first use and
// panicking on a kind or label mismatch (a programming error).
func (r *Registry) family(name, help string, kind Kind, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s, was %s", name, kind, f.kind))
		}
		if len(f.labels) != len(labels) {
			panic(fmt.Sprintf("telemetry: %s re-registered with %d labels, had %d", name, len(labels), len(f.labels)))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels: append([]string(nil), labels...),
		bounds: append([]float64(nil), bounds...),
		series: make(map[string]any),
	}
	r.families[name] = f
	r.order = append(r.order, name)
	sort.Strings(r.order)
	return f
}

// Counter returns the named counter, registering it on first use.
// Returns nil (a no-op counter) on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.family(name, help, KindCounter, nil, nil).getOrCreate("").(*Counter)
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.family(name, help, KindGauge, nil, nil).getOrCreate("").(*Gauge)
}

// Histogram returns the named histogram, registering it on first use
// with the given bucket upper bounds (ascending; +Inf is implicit).
// Later calls reuse the first registration's buckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.family(name, help, KindHistogram, nil, bounds).getOrCreate("").(*Histogram)
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct {
	f *family
}

// CounterVec returns the named labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.family(name, help, KindCounter, labels, nil)}
}

// With returns the counter for the given label values, creating it on
// first use. Resolve once at setup time; the returned counter is the
// hot-path handle. A nil vec returns a nil (no-op) counter.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	if len(values) != len(v.f.labels) {
		panic(fmt.Sprintf("telemetry: %s wants %d label values, got %d", v.f.name, len(v.f.labels), len(values)))
	}
	return v.f.getOrCreate(strings.Join(values, labelSep)).(*Counter)
}

// GaugeVec is a family of gauges distinguished by label values.
type GaugeVec struct {
	f *family
}

// GaugeVec returns the named labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.family(name, help, KindGauge, labels, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	if len(values) != len(v.f.labels) {
		panic(fmt.Sprintf("telemetry: %s wants %d label values, got %d", v.f.name, len(v.f.labels), len(values)))
	}
	return v.f.getOrCreate(strings.Join(values, labelSep)).(*Gauge)
}

// Series is one exported time-series sample, flattened for exposition.
type Series struct {
	Name   string
	Help   string
	Kind   Kind
	Labels []string // label names, parallel to Values
	Values []string // label values

	// Counter reads into Value; Gauge into GaugeValue; Histogram into
	// Hist.
	Value      uint64
	GaugeValue int64
	Hist       *Histogram
}

// labelString renders {k="v",...}, or "" without labels.
func (s *Series) labelString() string {
	if len(s.Labels) == 0 {
		return ""
	}
	parts := make([]string, len(s.Labels))
	for i := range s.Labels {
		parts[i] = fmt.Sprintf("%s=%q", s.Labels[i], s.Values[i])
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// FullName renders the series name with its label set appended.
func (s *Series) FullName() string { return s.Name + s.labelString() }

// Gather returns every registered series in deterministic order
// (families sorted by name, series in creation order).
func (r *Registry) Gather() []Series {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	var out []Series
	for _, f := range fams {
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		f.mu.Unlock()
		for _, key := range keys {
			m, ok := f.get(key)
			if !ok {
				continue
			}
			s := Series{Name: f.name, Help: f.help, Kind: f.kind, Labels: f.labels}
			if key != "" {
				s.Values = strings.Split(key, labelSep)
			}
			switch v := m.(type) {
			case *Counter:
				s.Value = v.Value()
			case *Gauge:
				s.GaugeValue = v.Value()
			case *Histogram:
				s.Hist = v
			}
			out = append(out, s)
		}
	}
	return out
}
