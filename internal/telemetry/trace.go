package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Tracer records the lifecycle of network-wide snapshots as spans:
// one span per snapshot from initiation to global assembly, with one
// nested span per device from its first finished unit result to its
// last. Timestamps are int64 nanoseconds on whatever clock the runtime
// uses (virtual time in the simulator, wall time since start in the
// live runtime) — the tracer only ever compares and subtracts them.
//
// All methods are safe for concurrent use and for nil receivers (a nil
// Tracer is the disabled state and records nothing).
type Tracer struct {
	mu    sync.Mutex
	limit int
	spans map[uint64]*traceSpan
	order []uint64
}

type traceSpan struct {
	begin      int64
	end        int64
	ended      bool
	consistent bool
	devOrder   []int
	devs       map[int]*traceDev
}

type traceDev struct {
	first, last int64
	units       int
}

// NewTracer creates a tracer retaining at most limit snapshots
// (oldest evicted first). limit <= 0 selects the default of 4096.
func NewTracer(limit int) *Tracer {
	if limit <= 0 {
		limit = 4096
	}
	return &Tracer{limit: limit, spans: make(map[uint64]*traceSpan)}
}

// BeginSnapshot opens the span for snapshot id at the given timestamp.
func (t *Tracer) BeginSnapshot(id uint64, atNs int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.spans[id]; ok {
		return
	}
	if len(t.order) >= t.limit {
		evict := t.order[0]
		t.order = t.order[1:]
		delete(t.spans, evict)
	}
	t.spans[id] = &traceSpan{begin: atNs, devs: make(map[int]*traceDev)}
	t.order = append(t.order, id)
}

// UnitResult records that one of device node's units finished its part
// of snapshot id at the given timestamp, growing the device's span.
func (t *Tracer) UnitResult(id uint64, node int, atNs int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.spans[id]
	if !ok {
		return
	}
	d, ok := s.devs[node]
	if !ok {
		d = &traceDev{first: atNs, last: atNs}
		s.devs[node] = d
		s.devOrder = append(s.devOrder, node)
	}
	if atNs < d.first {
		d.first = atNs
	}
	if atNs > d.last {
		d.last = atNs
	}
	d.units++
}

// EndSnapshot closes the span for snapshot id.
func (t *Tracer) EndSnapshot(id uint64, atNs int64, consistent bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.spans[id]
	if !ok {
		return
	}
	s.end = atNs
	s.ended = true
	s.consistent = consistent
}

// DeviceSpan is one device's contribution to a snapshot: the window
// between its first and last finished unit result.
type DeviceSpan struct {
	Node    int   `json:"node"`
	FirstNs int64 `json:"first_ns"`
	LastNs  int64 `json:"last_ns"`
	Units   int   `json:"units"`
}

// SnapshotSpan is one snapshot's full lifecycle.
type SnapshotSpan struct {
	ID         uint64       `json:"id"`
	BeginNs    int64        `json:"begin_ns"`
	EndNs      int64        `json:"end_ns"`
	Complete   bool         `json:"complete"`
	Consistent bool         `json:"consistent"`
	Devices    []DeviceSpan `json:"devices"`
}

// Spans returns every recorded snapshot span in snapshot-ID order,
// devices sorted by node.
func (t *Tracer) Spans() []SnapshotSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SnapshotSpan, 0, len(t.order))
	for _, id := range t.order {
		s := t.spans[id]
		span := SnapshotSpan{
			ID: id, BeginNs: s.begin, EndNs: s.end,
			Complete: s.ended, Consistent: s.consistent,
		}
		for _, node := range s.devOrder {
			d := s.devs[node]
			span.Devices = append(span.Devices, DeviceSpan{
				Node: node, FirstNs: d.first, LastNs: d.last, Units: d.units,
			})
		}
		sort.Slice(span.Devices, func(a, b int) bool { return span.Devices[a].Node < span.Devices[b].Node })
		out = append(out, span)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// WriteJSON renders the recorded spans as an indented JSON array.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	spans := t.Spans()
	if spans == nil {
		spans = []SnapshotSpan{}
	}
	return enc.Encode(spans)
}

// chromeEvent is one entry of the Chrome trace_event format.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders the recorded spans in the Chrome
// trace_event JSON format, loadable in about://tracing and Perfetto.
// Track 0 holds one complete ("X") event per snapshot; each device gets
// its own track (tid = node+1) with one nested span per snapshot it
// contributed to. Incomplete snapshots are omitted.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	events := []chromeEvent{
		{Name: "process_name", Ph: "M", PID: 1, Args: map[string]any{"name": "speedlight"}},
		{Name: "thread_name", Ph: "M", PID: 1, TID: 0, Args: map[string]any{"name": "snapshots"}},
	}
	named := map[int]bool{}
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	for _, s := range spans {
		if !s.Complete {
			continue
		}
		events = append(events, chromeEvent{
			Name: "snapshot " + uitoa(s.ID), Cat: "snapshot", Ph: "X",
			TS: us(s.BeginNs), Dur: us(s.EndNs - s.BeginNs), PID: 1, TID: 0,
			Args: map[string]any{"id": s.ID, "consistent": s.Consistent, "devices": len(s.Devices)},
		})
		for _, d := range s.Devices {
			tid := d.Node + 1
			if !named[tid] {
				named[tid] = true
				events = append(events, chromeEvent{
					Name: "thread_name", Ph: "M", PID: 1, TID: tid,
					Args: map[string]any{"name": "sw" + itoa(d.Node)},
				})
			}
			dur := us(d.LastNs - d.FirstNs)
			if dur <= 0 {
				dur = 0.001 // minimum visible width
			}
			events = append(events, chromeEvent{
				Name: "snapshot " + uitoa(s.ID) + " sw" + itoa(d.Node), Cat: "device", Ph: "X",
				TS: us(d.FirstNs), Dur: dur, PID: 1, TID: tid,
				Args: map[string]any{"snapshot": s.ID, "units": d.Units},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	})
}

func itoa(v int) string { return uitoa(uint64(v)) }

func uitoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
