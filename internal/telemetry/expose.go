package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"text/tabwriter"
)

// WritePrometheus renders every registered series in the Prometheus
// text exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	lastFamily := ""
	for _, s := range r.Gather() {
		if s.Name != lastFamily {
			lastFamily = s.Name
			if s.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, s.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
				return err
			}
		}
		switch s.Kind {
		case KindCounter:
			if _, err := fmt.Fprintf(w, "%s %d\n", s.FullName(), s.Value); err != nil {
				return err
			}
		case KindGauge:
			if _, err := fmt.Fprintf(w, "%s %d\n", s.FullName(), s.GaugeValue); err != nil {
				return err
			}
		case KindHistogram:
			h := s.Hist
			bounds := h.Bounds()
			counts := h.BucketCounts()
			var cum uint64
			for i, c := range counts {
				cum += c
				le := "+Inf"
				if i < len(bounds) {
					le = formatFloat(bounds[i])
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, mergeLabel(&s, "le", le), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, s.labelString(), formatFloat(h.Sum())); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, s.labelString(), h.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}

// mergeLabel renders a series' label set with one extra pair appended.
func mergeLabel(s *Series, name, value string) string {
	parts := make([]string, 0, len(s.Labels)+1)
	for i := range s.Labels {
		parts = append(parts, fmt.Sprintf("%s=%q", s.Labels[i], s.Values[i]))
	}
	parts = append(parts, fmt.Sprintf("%s=%q", name, value))
	out := "{"
	for i, p := range parts {
		if i > 0 {
			out += ","
		}
		out += p
	}
	return out + "}"
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// HistogramJSON is a histogram's JSON exposition shape.
type HistogramJSON struct {
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Max     float64           `json:"max"`
	P50     float64           `json:"p50"`
	P90     float64           `json:"p90"`
	P99     float64           `json:"p99"`
	Buckets map[string]uint64 `json:"buckets"`
}

// JSONValue returns the registry's state as a JSON-marshalable value:
// counters and gauges as numbers, histograms as HistogramJSON, keyed by
// full series name. This is what the expvar endpoint publishes.
func (r *Registry) JSONValue() map[string]any {
	out := make(map[string]any)
	for _, s := range r.Gather() {
		switch s.Kind {
		case KindCounter:
			out[s.FullName()] = s.Value
		case KindGauge:
			out[s.FullName()] = s.GaugeValue
		case KindHistogram:
			h := s.Hist
			bounds := h.Bounds()
			counts := h.BucketCounts()
			buckets := make(map[string]uint64, len(counts))
			for i, c := range counts {
				if c == 0 {
					continue
				}
				le := "+Inf"
				if i < len(bounds) {
					le = formatFloat(bounds[i])
				}
				buckets[le] = c
			}
			out[s.FullName()] = HistogramJSON{
				Count: h.Count(), Sum: h.Sum(), Max: h.Max(),
				P50: h.Quantile(0.5), P90: h.Quantile(0.9), P99: h.Quantile(0.99),
				Buckets: buckets,
			}
		}
	}
	return out
}

// WriteJSON renders the registry as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.JSONValue())
}

// WriteSummary renders a human-readable end-of-run table: counters and
// gauges with their values, histograms with count and percentiles. Zero
// counters are elided to keep sim-run output focused.
func (r *Registry) WriteSummary(w io.Writer) error {
	series := r.Gather()
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "metric\tvalue")
	var hists []Series
	for _, s := range series {
		switch s.Kind {
		case KindCounter:
			if s.Value != 0 {
				fmt.Fprintf(tw, "%s\t%d\n", s.FullName(), s.Value)
			}
		case KindGauge:
			if s.GaugeValue != 0 {
				fmt.Fprintf(tw, "%s\t%d\n", s.FullName(), s.GaugeValue)
			}
		case KindHistogram:
			if s.Hist.Count() != 0 {
				hists = append(hists, s)
			}
		}
	}
	sort.SliceStable(hists, func(i, j int) bool { return hists[i].Name < hists[j].Name })
	for _, s := range hists {
		h := s.Hist
		fmt.Fprintf(tw, "%s\tn=%d p50=%.1f p90=%.1f p99=%.1f max=%.1f\n",
			s.FullName(), h.Count(), h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99), h.Max())
	}
	return tw.Flush()
}
