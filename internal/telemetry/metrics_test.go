package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	g.SetMax(9)
	h.Observe(1.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil metrics must read zero")
	}
	var r *Registry
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "", nil) != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	if r.CounterVec("x", "", "l").With("v") != nil {
		t.Fatal("nil counter vec must hand out nil counters")
	}
	if got := r.Gather(); got != nil {
		t.Fatalf("nil registry gather = %v", got)
	}
}

func TestCounterGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := reg.Counter("reqs_total", "requests"); again != c {
		t.Fatal("re-registration must return the same counter")
	}

	g := reg.Gauge("depth", "queue depth")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	g.SetMax(3)
	if g.Value() != 5 {
		t.Fatal("SetMax must not lower the gauge")
	}
	g.SetMax(11)
	if g.Value() != 11 {
		t.Fatal("SetMax must raise the gauge")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_us", "latency", []float64{10, 100, 1000})
	for i := 0; i < 90; i++ {
		h.Observe(5) // first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(500) // third bucket
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-(90*5+10*500)) > 1e-9 {
		t.Fatalf("sum = %g", got)
	}
	if h.Max() != 500 {
		t.Fatalf("max = %g", h.Max())
	}
	if p50 := h.Quantile(0.5); p50 <= 0 || p50 > 10 {
		t.Fatalf("p50 = %g, want within first bucket (0,10]", p50)
	}
	if p99 := h.Quantile(0.99); p99 <= 100 || p99 > 1000 {
		t.Fatalf("p99 = %g, want within third bucket (100,1000]", p99)
	}
	h.Observe(5000) // +Inf bucket
	if q := h.Quantile(1); q != 5000 {
		t.Fatalf("q1 = %g, want observed max", q)
	}
}

func TestCounterVecLabels(t *testing.T) {
	reg := NewRegistry()
	vec := reg.CounterVec("sw_pkts_total", "per-switch packets", "switch")
	a := vec.With("0")
	b := vec.With("1")
	if a == b {
		t.Fatal("distinct label values must get distinct counters")
	}
	if vec.With("0") != a {
		t.Fatal("same label value must get the same counter")
	}
	a.Add(3)
	b.Inc()

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE sw_pkts_total counter",
		`sw_pkts_total{switch="0"} 3`,
		`sw_pkts_total{switch="1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusHistogramFormat(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_us", "latency", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE lat_us histogram",
		`lat_us_bucket{le="1"} 1`,
		`lat_us_bucket{le="10"} 2`,
		`lat_us_bucket{le="+Inf"} 3`,
		"lat_us_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestJSONValueRoundTrips(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "").Add(2)
	reg.Gauge("b", "").Set(-4)
	reg.Histogram("c_us", "", []float64{1, 2}).Observe(1.5)
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	for _, key := range []string{"a_total", "b", "c_us"} {
		if _, ok := decoded[key]; !ok {
			t.Fatalf("JSON missing %q: %s", key, buf.String())
		}
	}
}

func TestSummaryElidesZeroes(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("used_total", "").Inc()
	reg.Counter("unused_total", "")
	var buf bytes.Buffer
	if err := reg.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "used_total") {
		t.Fatalf("summary missing used counter:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "unused_total") {
		t.Fatalf("summary must elide zero counters:\n%s", buf.String())
	}
}

func TestConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "")
	g := reg.Gauge("g", "")
	h := reg.Histogram("h", "", ExpBuckets(1, 2, 10))
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.SetMax(int64(w*per + i))
				h.Observe(float64(i % 100))
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if g.Value() != workers*per-1 {
		t.Fatalf("gauge high water = %d, want %d", g.Value(), workers*per-1)
	}
}
