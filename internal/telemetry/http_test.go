package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func probe(t *testing.T, mux *http.ServeMux, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Body.String()
}

func TestHealthzDefaultMux(t *testing.T) {
	// NewMux without an explicit Health serves both probes passing: a
	// process answering HTTP is trivially live, and nothing gates it.
	mux := NewMux(NewRegistry(), nil)
	if code, body := probe(t, mux, "/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q, want 200 ok", code, body)
	}
	if code, _ := probe(t, mux, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", code)
	}
}

func TestReadyzBothStates(t *testing.T) {
	h := NewHealth()
	mux := NewMuxConfig(MuxConfig{Health: h})

	// Not ready until the runtime says so.
	if code, body := probe(t, mux, "/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "not ready") {
		t.Fatalf("/readyz before SetReady = %d %q, want 503 not ready", code, body)
	}
	// Liveness is independent of readiness.
	if code, _ := probe(t, mux, "/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz before SetReady = %d, want 200", code)
	}

	h.SetReady(true)
	if code, body := probe(t, mux, "/readyz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/readyz after SetReady = %d %q, want 200 ok", code, body)
	}

	// Shutdown flips it back.
	h.SetReady(false)
	if code, _ := probe(t, mux, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after SetReady(false) = %d, want 503", code)
	}
}

func TestHealthChecksBothStates(t *testing.T) {
	h := NewHealth()
	h.SetReady(true)
	failing := false
	h.AddCheck("observer", func() error {
		if failing {
			return fmt.Errorf("stalled")
		}
		return nil
	})
	mux := NewMuxConfig(MuxConfig{Health: h})

	if code, _ := probe(t, mux, "/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz with passing check = %d, want 200", code)
	}
	if code, _ := probe(t, mux, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz with passing check = %d, want 200", code)
	}

	failing = true
	if code, body := probe(t, mux, "/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "observer: stalled") {
		t.Fatalf("/healthz with failing check = %d %q, want 503 observer: stalled", code, body)
	}
	if code, body := probe(t, mux, "/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "observer: stalled") {
		t.Fatalf("/readyz with failing check = %d %q, want 503", code, body)
	}
}

func TestHealthNilReceiver(t *testing.T) {
	var h *Health
	h.SetReady(true)
	h.AddCheck("x", func() error { return nil })
	if !h.Ready() {
		t.Fatal("nil Health must report ready")
	}
	if fails := h.failures(); fails != nil {
		t.Fatalf("nil Health failures = %v, want nil", fails)
	}
}

func TestMuxJournalAuditRoutes(t *testing.T) {
	mux := NewMuxConfig(MuxConfig{
		Journal: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) { io.WriteString(w, "jr") }),
		Audit:   http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) { io.WriteString(w, "au") }),
	})
	if _, body := probe(t, mux, "/journal"); body != "jr" {
		t.Fatalf("/journal body = %q", body)
	}
	if _, body := probe(t, mux, "/audit"); body != "au" {
		t.Fatalf("/audit body = %q", body)
	}
	// Absent handlers answer 503 "not attached" rather than 404.
	bare := NewMux(NewRegistry(), nil)
	if code, _ := probe(t, bare, "/journal"); code != http.StatusServiceUnavailable {
		t.Fatalf("/journal on bare mux = %d, want 503", code)
	}
}

func TestServeTimeoutsConfigured(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.srv.ReadHeaderTimeout <= 0 || srv.srv.ReadTimeout <= 0 ||
		srv.srv.WriteTimeout <= 0 || srv.srv.IdleTimeout <= 0 {
		t.Fatalf("server missing timeouts: %+v", srv.srv)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz over the wire = %d, want 200", resp.StatusCode)
	}
}
