// Package telemetry is Speedlight's measurement substrate: a
// dependency-free, concurrency-safe metrics core (counters, gauges,
// fixed-bucket histograms, a registry with labeled families), a
// snapshot-lifecycle tracer, and HTTP exposition in Prometheus text
// format, expvar JSON, and net/http/pprof.
//
// The package is built for the per-packet hot path: every update is a
// handful of atomic operations with zero allocations, and every metric
// type is safe to use through a nil pointer, which is the
// disabled state. A component instrumented with nil metrics pays one
// predicted branch per update and nothing else — the
// zero-overhead-when-disabled contract the protocol packages rely on.
package telemetry

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. All methods are safe
// for concurrent use and for nil receivers (a nil Counter is a no-op).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count. A nil Counter reads zero.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous signed value. All methods are safe for
// concurrent use and for nil receivers.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// SetMax raises the gauge to v if v is larger — a high-water mark.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur {
			return
		}
		if g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value. A nil Gauge reads zero.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram. Bucket bounds are upper
// bounds in ascending order; an implicit +Inf bucket catches the rest.
// Observations are allocation-free: a linear scan over the bounds (the
// bucket count is small by construction) plus three atomic updates.
// All methods are safe for concurrent use and for nil receivers.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
	max    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		cur := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(cur) + v)
		if h.sum.CompareAndSwap(cur, next) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= math.Float64frombits(cur) && cur != 0 {
			break
		}
		if h.max.CompareAndSwap(cur, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Max returns the largest observed value, or 0 before any observation.
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.max.Load())
}

// Bounds returns the bucket upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	out := make([]float64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// BucketCounts returns the per-bucket counts, the last entry being the
// +Inf bucket.
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation inside the containing bucket, clamped to the observed
// maximum. Values in the +Inf bucket report the histogram's observed
// maximum. Returns 0 with no data.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if cum+c >= rank && c > 0 {
			if i == len(h.bounds) {
				return h.Max()
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - cum) / c
			est := lo + (hi-lo)*frac
			if max := h.Max(); est > max {
				est = max
			}
			return est
		}
		cum += c
	}
	return h.Max()
}

// ExpBuckets returns count exponentially growing bucket bounds
// starting at start and multiplying by factor.
func ExpBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	v := start
	for i := 0; i < count; i++ {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBucketsUS is the default bucket layout for latency histograms
// measured in microseconds: 1 µs to ~1 s, quadrupling.
var LatencyBucketsUS = ExpBuckets(1, 4, 11)
