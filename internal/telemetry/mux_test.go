package telemetry

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// dataEndpoints are the mux paths backed by optional subsystems. The
// contract under test: every one of them is always mounted, answers 503
// "not attached" before its subsystem is wired, and never panics on any
// partial MuxConfig.
var dataEndpoints = []string{
	"/journal", "/audit", "/snapshots", "/snapshots/diff",
	"/invariants", "/trace/epoch", "/trace/critical",
}

func muxGet(t *testing.T, mux *http.ServeMux, path string) int {
	t.Helper()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code
}

func TestMuxDataEndpointsBeforeAttach(t *testing.T) {
	mux := NewMuxConfig(MuxConfig{})
	for _, path := range dataEndpoints {
		if code := muxGet(t, mux, path); code != http.StatusServiceUnavailable {
			t.Errorf("%s before attach = %d, want 503", path, code)
		}
	}
}

func TestMuxHalfWiredConfigsNeverPanic(t *testing.T) {
	ok := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	// Every single-field config: the wired endpoint serves, the rest
	// answer 503, and building + serving never panics.
	configs := map[string]MuxConfig{
		"journal":    {Journal: ok},
		"audit":      {Audit: ok},
		"snapshots":  {Snapshots: ok},
		"invariants": {Invariants: ok},
		"epochtrace": {EpochTrace: ok},
	}
	served := map[string][]string{
		"journal":    {"/journal"},
		"audit":      {"/audit"},
		"snapshots":  {"/snapshots", "/snapshots/diff"},
		"invariants": {"/invariants"},
		"epochtrace": {"/trace/epoch", "/trace/critical"},
	}
	for name, cfg := range configs {
		mux := NewMuxConfig(cfg)
		wired := map[string]bool{}
		for _, p := range served[name] {
			wired[p] = true
		}
		for _, path := range dataEndpoints {
			want := http.StatusServiceUnavailable
			if wired[path] {
				want = http.StatusOK
			}
			if code := muxGet(t, mux, path); code != want {
				t.Errorf("config %q: %s = %d, want %d", name, path, code, want)
			}
		}
	}
}

func TestMuxTraceSubpathsDistinctFromLifecycleTrace(t *testing.T) {
	// /trace (PR 1's snapshot-lifecycle Chrome trace) keeps serving 200
	// with a nil tracer while the epoch endpoints answer independently.
	mux := NewMuxConfig(MuxConfig{})
	if code := muxGet(t, mux, "/trace"); code != http.StatusOK {
		t.Errorf("/trace = %d, want 200 (lifecycle tracer serves empty)", code)
	}
	attached := NewMuxConfig(MuxConfig{
		EpochTrace: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.WriteHeader(http.StatusOK)
		}),
	})
	if code := muxGet(t, attached, "/trace/epoch"); code != http.StatusOK {
		t.Errorf("/trace/epoch attached = %d, want 200", code)
	}
	if code := muxGet(t, attached, "/trace/critical"); code != http.StatusOK {
		t.Errorf("/trace/critical attached = %d, want 200", code)
	}
}
