package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestTracerSpans(t *testing.T) {
	tr := NewTracer(0)
	tr.BeginSnapshot(1, 100)
	tr.UnitResult(1, 0, 150)
	tr.UnitResult(1, 0, 180)
	tr.UnitResult(1, 2, 160)
	tr.EndSnapshot(1, 200, true)
	tr.BeginSnapshot(2, 300) // never completes

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	s := spans[0]
	if s.ID != 1 || s.BeginNs != 100 || s.EndNs != 200 || !s.Complete || !s.Consistent {
		t.Fatalf("span = %+v", s)
	}
	if len(s.Devices) != 2 {
		t.Fatalf("devices = %d, want 2", len(s.Devices))
	}
	if d := s.Devices[0]; d.Node != 0 || d.FirstNs != 150 || d.LastNs != 180 || d.Units != 2 {
		t.Fatalf("device 0 = %+v", d)
	}
	if d := s.Devices[1]; d.Node != 2 || d.FirstNs != 160 || d.LastNs != 160 || d.Units != 1 {
		t.Fatalf("device 2 = %+v", d)
	}
	if spans[1].Complete {
		t.Fatal("snapshot 2 must be incomplete")
	}
	// Nesting: each device span lies inside its snapshot span.
	for _, d := range s.Devices {
		if d.FirstNs < s.BeginNs || d.LastNs > s.EndNs {
			t.Fatalf("device span %+v escapes snapshot span %+v", d, s)
		}
	}
}

func TestTracerNilAndEviction(t *testing.T) {
	var nilT *Tracer
	nilT.BeginSnapshot(1, 0)
	nilT.UnitResult(1, 0, 0)
	nilT.EndSnapshot(1, 0, true)
	if nilT.Spans() != nil {
		t.Fatal("nil tracer must return nil spans")
	}

	tr := NewTracer(2)
	tr.BeginSnapshot(1, 0)
	tr.BeginSnapshot(2, 0)
	tr.BeginSnapshot(3, 0)
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].ID != 2 || spans[1].ID != 3 {
		t.Fatalf("eviction kept %+v, want snapshots 2 and 3", spans)
	}
}

func TestChromeTraceFormat(t *testing.T) {
	tr := NewTracer(0)
	for id := uint64(1); id <= 3; id++ {
		at := int64(id * 1000)
		tr.BeginSnapshot(id, at)
		tr.UnitResult(id, 0, at+100)
		tr.UnitResult(id, 1, at+200)
		tr.EndSnapshot(id, at+500, true)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid chrome trace JSON: %v\n%s", err, buf.String())
	}
	var snapSpans, devSpans int
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.TID == 0 {
			snapSpans++
			if ev.Dur <= 0 {
				t.Fatalf("snapshot span without duration: %+v", ev)
			}
		} else {
			devSpans++
		}
	}
	if snapSpans != 3 {
		t.Fatalf("snapshot spans = %d, want 3", snapSpans)
	}
	if devSpans != 6 {
		t.Fatalf("device spans = %d, want 6", devSpans)
	}
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total", "liveness").Inc()
	tr := NewTracer(0)
	tr.BeginSnapshot(1, 0)
	tr.EndSnapshot(1, 10, true)

	srv, err := Serve("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if out := get("/metrics"); !strings.Contains(out, "up_total 1") {
		t.Fatalf("/metrics missing counter:\n%s", out)
	}
	vars := get("/debug/vars")
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal([]byte(vars), &decoded); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := decoded["speedlight"]; !ok {
		t.Fatalf("/debug/vars missing speedlight var: %s", vars)
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
	trace := get("/trace")
	if err := json.Unmarshal([]byte(trace), &struct{}{}); err != nil {
		t.Fatalf("/trace not JSON: %v", err)
	}
	spans := get("/spans")
	if !strings.Contains(spans, `"id": 1`) {
		t.Fatalf("/spans missing span: %s", spans)
	}
}
