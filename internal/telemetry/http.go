package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// expvarReg is the registry behind the process-wide "speedlight"
// expvar. expvar.Publish is permanent and panics on duplicates, so the
// variable is published once and indirects through this pointer —
// tests and successive runs can swap registries freely.
var (
	expvarReg  atomic.Pointer[Registry]
	expvarOnce sync.Once
)

// PublishExpvar exposes the registry under the "speedlight" expvar,
// alongside the standard memstats/cmdline variables on /debug/vars.
// Safe to call repeatedly; the latest registry wins.
func PublishExpvar(r *Registry) {
	expvarReg.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("speedlight", expvar.Func(func() any {
			reg := expvarReg.Load()
			if reg == nil {
				return nil
			}
			return reg.JSONValue()
		}))
	})
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// NewMux builds the observability endpoint set:
//
//	/metrics           Prometheus text format
//	/debug/vars        expvar JSON (registry published as "speedlight")
//	/debug/pprof/...   net/http/pprof profiles
//	/trace             Chrome trace_event JSON of snapshot lifecycles
//	/spans             structured span JSON
//
// tracer may be nil, in which case /trace and /spans serve empty data.
func NewMux(r *Registry, tracer *Tracer) *http.ServeMux {
	PublishExpvar(r)
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = tracer.WriteChromeTrace(w)
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = tracer.WriteJSON(w)
	})
	return mux
}

// Server is a running observability HTTP server.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// Serve starts the observability endpoints on addr (e.g. ":9090").
// It returns once the listener is bound; requests are served in a
// background goroutine until Close.
func Serve(addr string, r *Registry, tracer *Tracer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: NewMux(r, tracer)},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down. Safe on a nil server.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	err := s.srv.Close()
	<-s.done
	return err
}
