package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// expvarReg is the registry behind the process-wide "speedlight"
// expvar. expvar.Publish is permanent and panics on duplicates, so the
// variable is published once and indirects through this pointer —
// tests and successive runs can swap registries freely.
var (
	expvarReg  atomic.Pointer[Registry]
	expvarOnce sync.Once
)

// PublishExpvar exposes the registry under the "speedlight" expvar,
// alongside the standard memstats/cmdline variables on /debug/vars.
// Safe to call repeatedly; the latest registry wins.
func PublishExpvar(r *Registry) {
	expvarReg.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("speedlight", expvar.Func(func() any {
			reg := expvarReg.Load()
			if reg == nil {
				return nil
			}
			return reg.JSONValue()
		}))
	})
}

// NowNs returns the current wall-clock time in nanoseconds. It exists
// so deterministic packages (sim, emunet) can take wall time as an
// injected dependency — e.g. sim.(*Parallel).EnableBarrierMetrics —
// without ever calling time.Now themselves.
func NowNs() int64 { return time.Now().UnixNano() }

// Handler returns an http.Handler serving the registry in Prometheus
// text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Health tracks process liveness and readiness for /healthz and
// /readyz. Liveness (/healthz) passes whenever every registered check
// passes; readiness (/readyz) additionally requires SetReady(true) —
// runtimes flip it once their goroutines are launched and clear it on
// shutdown. All methods are safe on a nil receiver and for concurrent
// use.
type Health struct {
	ready  atomic.Bool
	mu     sync.Mutex
	checks map[string]func() error
}

// NewHealth returns a Health in the not-ready state with no checks.
func NewHealth() *Health { return &Health{} }

// SetReady flips the readiness gate.
func (h *Health) SetReady(ok bool) {
	if h == nil {
		return
	}
	h.ready.Store(ok)
}

// Ready reports the readiness gate. A nil Health is always ready.
func (h *Health) Ready() bool {
	if h == nil {
		return true
	}
	return h.ready.Load()
}

// AddCheck registers a named liveness check. The function is called on
// every /healthz and /readyz request; a non-nil error marks the probe
// failed. Re-registering a name replaces the previous check.
func (h *Health) AddCheck(name string, fn func() error) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.checks == nil {
		h.checks = make(map[string]func() error)
	}
	h.checks[name] = fn
}

// failures runs every check and returns "name: error" lines, sorted.
func (h *Health) failures() []string {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	names := make([]string, 0, len(h.checks))
	for name := range h.checks {
		names = append(names, name)
	}
	sort.Strings(names)
	fns := make([]func() error, len(names))
	for i, name := range names {
		fns[i] = h.checks[name]
	}
	h.mu.Unlock()
	var fails []string
	for i, fn := range fns {
		if err := fn(); err != nil {
			fails = append(fails, fmt.Sprintf("%s: %v", names[i], err))
		}
	}
	return fails
}

// serveProbe writes a probe response: 200 "ok" on success, 503 with
// one failure reason per line otherwise.
func serveProbe(w http.ResponseWriter, fails []string) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if len(fails) == 0 {
		fmt.Fprintln(w, "ok")
		return
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	for _, f := range fails {
		fmt.Fprintln(w, f)
	}
}

// MuxConfig parameterizes the observability endpoint set. Every field
// is optional.
type MuxConfig struct {
	Registry *Registry
	Tracer   *Tracer
	// Health backs /healthz and /readyz. Nil serves both as always
	// passing (a process answering HTTP is trivially live).
	Health *Health
	// Journal, when set, is mounted at /journal (the flight-recorder
	// event stream; see internal/journal.HTTPHandler).
	Journal http.Handler
	// Audit, when set, is mounted at /audit (the causal-consistency
	// audit report; see internal/audit.HTTPHandler).
	Audit http.Handler
	// Snapshots, when set, is mounted at /snapshots and /snapshots/
	// (the snapshot-history query plane; see
	// internal/snapstore.HTTPHandler).
	Snapshots http.Handler
	// Invariants, when set, is mounted at /invariants (invariant status
	// and violation history; see internal/invariant.HTTPHandler).
	Invariants http.Handler
	// EpochTrace, when set, is mounted at /trace/epoch and
	// /trace/critical (per-epoch causal traces and critical-path
	// rollups; see internal/epochtrace.HTTPHandler).
	EpochTrace http.Handler
}

// notAttached serves the uniform 503 for endpoints whose backing
// subsystem was not wired into this process. Every data endpoint is
// always mounted — registration order and partial configs can never
// turn a known path into a 404 or a panic, only into an explicit
// "not attached".
func notAttached(name string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, name+" not attached", http.StatusServiceUnavailable)
	})
}

// orNotAttached mounts h, or the 503 fallback when h is nil.
func orNotAttached(mux *http.ServeMux, pattern string, h http.Handler, name string) {
	if h == nil {
		h = notAttached(name)
	}
	mux.Handle(pattern, h)
}

// NewMux builds the default observability endpoint set for a registry
// and tracer. See NewMuxConfig for the full surface.
func NewMux(r *Registry, tracer *Tracer) *http.ServeMux {
	return NewMuxConfig(MuxConfig{Registry: r, Tracer: tracer})
}

// NewMuxConfig builds the observability endpoint set:
//
//	/metrics           Prometheus text format
//	/debug/vars        expvar JSON (registry published as "speedlight")
//	/debug/pprof/...   net/http/pprof profiles
//	/trace             Chrome trace_event JSON of snapshot lifecycles
//	/spans             structured span JSON
//	/healthz           liveness probe (200 ok / 503 + failing checks)
//	/readyz            readiness probe (liveness + SetReady gate)
//	/journal           flight-recorder events
//	/audit             consistency audit report
//	/snapshots         snapshot-history query plane
//	/invariants        invariant status + violations
//	/trace/epoch       per-epoch causal traces
//	/trace/critical    critical-path rollup
//
// Registry and Tracer may be nil, in which case their endpoints serve
// empty data. The data endpoints (journal, audit, snapshots,
// invariants, trace) are always mounted; those without a configured
// handler answer 503 "not attached" rather than 404, so a half-wired
// process degrades explicitly instead of surprisingly.
func NewMuxConfig(cfg MuxConfig) *http.ServeMux {
	PublishExpvar(cfg.Registry)
	mux := http.NewServeMux()
	mux.Handle("/metrics", cfg.Registry.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	tracer := cfg.Tracer
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = tracer.WriteChromeTrace(w)
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = tracer.WriteJSON(w)
	})
	health := cfg.Health
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		serveProbe(w, health.failures())
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		fails := health.failures()
		if !health.Ready() {
			fails = append(fails, "ready: not ready")
		}
		serveProbe(w, fails)
	})
	orNotAttached(mux, "/journal", cfg.Journal, "journal")
	orNotAttached(mux, "/audit", cfg.Audit, "audit")
	// Both snapshot patterns: the exact path for list/state queries and
	// the subtree for /snapshots/diff.
	orNotAttached(mux, "/snapshots", cfg.Snapshots, "snapshot store")
	orNotAttached(mux, "/snapshots/", cfg.Snapshots, "snapshot store")
	orNotAttached(mux, "/invariants", cfg.Invariants, "invariant engine")
	orNotAttached(mux, "/trace/epoch", cfg.EpochTrace, "epoch tracer")
	orNotAttached(mux, "/trace/critical", cfg.EpochTrace, "epoch tracer")
	return mux
}

// Server is a running observability HTTP server.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// Serve starts the default observability endpoints on addr (e.g.
// ":9090"). See ServeConfig for the full surface.
func Serve(addr string, r *Registry, tracer *Tracer) (*Server, error) {
	return ServeConfig(addr, MuxConfig{Registry: r, Tracer: tracer})
}

// ServeConfig starts the observability endpoints described by cfg on
// addr. It returns once the listener is bound; requests are served in
// a background goroutine until Close. The server carries connection
// timeouts so a stalled or malicious client cannot pin goroutines
// forever; the write timeout is generous because /debug/pprof/profile
// streams for its full profiling window (30s by default).
func ServeConfig(addr string, cfg MuxConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           NewMuxConfig(cfg),
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       10 * time.Second,
			WriteTimeout:      2 * time.Minute,
			IdleTimeout:       time.Minute,
		},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down. Safe on a nil server.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	err := s.srv.Close()
	<-s.done
	return err
}
