// Package export serializes snapshot campaign results and experiment
// figures to CSV and JSON, for analysis outside the repository
// (spreadsheets, gnuplot, pandas).
package export

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"speedlight/internal/audit"
	"speedlight/internal/dataplane"
	"speedlight/internal/epochtrace"
	"speedlight/internal/experiments"
	"speedlight/internal/invariant"
	"speedlight/internal/journal"
	"speedlight/internal/observer"
	"speedlight/internal/packet"
	"speedlight/internal/snapstore"
	"speedlight/internal/telemetry"
)

// SnapshotRow is one unit's value in one snapshot, flattened for
// serialization.
type SnapshotRow struct {
	SnapshotID packet.SeqID `json:"snapshot_id"`
	Switch     int          `json:"switch"`
	Port       int          `json:"port"`
	Direction  string       `json:"direction"`
	Value      uint64       `json:"value"`
	Consistent bool         `json:"consistent"`
	// ScheduledNs and CompletedNs bracket the snapshot in virtual time.
	ScheduledNs int64 `json:"scheduled_ns"`
	CompletedNs int64 `json:"completed_ns"`
}

// Rows flattens global snapshots into deterministic, sorted rows.
func Rows(snaps []*observer.GlobalSnapshot) []SnapshotRow {
	var rows []SnapshotRow
	for _, g := range snaps {
		units := make([]dataplane.UnitID, 0, len(g.Results))
		for u := range g.Results {
			units = append(units, u)
		}
		sort.Slice(units, func(a, b int) bool {
			x, y := units[a], units[b]
			if x.Node != y.Node {
				return x.Node < y.Node
			}
			if x.Port != y.Port {
				return x.Port < y.Port
			}
			return x.Dir < y.Dir
		})
		for _, u := range units {
			res := g.Results[u]
			rows = append(rows, SnapshotRow{
				SnapshotID:  g.ID,
				Switch:      int(u.Node),
				Port:        u.Port,
				Direction:   u.Dir.String(),
				Value:       res.Value,
				Consistent:  res.Consistent,
				ScheduledNs: int64(g.ScheduledAt),
				CompletedNs: int64(g.CompletedAt),
			})
		}
	}
	return rows
}

// SnapshotsCSV writes flattened snapshots as CSV with a header row.
func SnapshotsCSV(w io.Writer, snaps []*observer.GlobalSnapshot) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"snapshot_id", "switch", "port", "direction", "value",
		"consistent", "scheduled_ns", "completed_ns",
	}); err != nil {
		return err
	}
	for _, r := range Rows(snaps) {
		if err := cw.Write([]string{
			fmt.Sprint(r.SnapshotID), fmt.Sprint(r.Switch), fmt.Sprint(r.Port),
			r.Direction, fmt.Sprint(r.Value), fmt.Sprint(r.Consistent),
			fmt.Sprint(r.ScheduledNs), fmt.Sprint(r.CompletedNs),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SnapshotsJSON writes flattened snapshots as a JSON array.
func SnapshotsJSON(w io.Writer, snaps []*observer.GlobalSnapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Rows(snaps))
}

// FigureCSV writes an experiment figure's series as long-form CSV
// (series, x, y).
func FigureCSV(w io.Writer, f *experiments.Figure) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", f.XLabel, f.YLabel}); err != nil {
		return err
	}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if err := cw.Write([]string{
				s.Name,
				fmt.Sprintf("%g", p.X),
				fmt.Sprintf("%g", p.Y),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// TableCSV writes an experiment table as CSV.
func TableCSV(w io.Writer, t *experiments.Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// TelemetryCSV writes a registry's series as long-form CSV. Counters
// and gauges produce one row each; histograms produce one row per
// statistic (count, sum, max, p50, p90, p99) so downstream tooling
// never has to parse bucket structure.
func TelemetryCSV(w io.Writer, reg *telemetry.Registry) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"metric", "stat", "value"}); err != nil {
		return err
	}
	for _, s := range reg.Gather() {
		name := s.FullName()
		switch s.Kind {
		case telemetry.KindCounter:
			if err := cw.Write([]string{name, "value", fmt.Sprint(s.Value)}); err != nil {
				return err
			}
		case telemetry.KindGauge:
			if err := cw.Write([]string{name, "value", fmt.Sprint(s.GaugeValue)}); err != nil {
				return err
			}
		case telemetry.KindHistogram:
			h := s.Hist
			stats := []struct {
				stat  string
				value float64
			}{
				{"count", float64(h.Count())},
				{"sum", h.Sum()},
				{"max", h.Max()},
				{"p50", h.Quantile(0.50)},
				{"p90", h.Quantile(0.90)},
				{"p99", h.Quantile(0.99)},
			}
			for _, st := range stats {
				if err := cw.Write([]string{name, st.stat, fmt.Sprintf("%g", st.value)}); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// SpansCSV writes a tracer's snapshot-lifecycle spans as CSV, one row
// per snapshot and one per per-device sub-span.
func SpansCSV(w io.Writer, tr *telemetry.Tracer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"snapshot_id", "device", "begin_ns", "end_ns", "duration_ns", "consistent",
	}); err != nil {
		return err
	}
	for _, sp := range tr.Spans() {
		if err := cw.Write([]string{
			fmt.Sprint(sp.ID), "", fmt.Sprint(sp.BeginNs), fmt.Sprint(sp.EndNs),
			fmt.Sprint(sp.EndNs - sp.BeginNs), fmt.Sprint(sp.Consistent),
		}); err != nil {
			return err
		}
		for _, d := range sp.Devices {
			if err := cw.Write([]string{
				fmt.Sprint(sp.ID), fmt.Sprint(d.Node), fmt.Sprint(d.FirstNs), fmt.Sprint(d.LastNs),
				fmt.Sprint(d.LastNs - d.FirstNs), "",
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// JournalJSONL writes flight-recorder events as JSON Lines, one event
// per line — the journal's native interchange format.
func JournalJSONL(w io.Writer, events []journal.Event) error {
	return journal.WriteJSONL(w, events)
}

// ReadJournalJSONL parses a JSON Lines journal dump.
func ReadJournalJSONL(r io.Reader) ([]journal.Event, error) {
	return journal.ReadJSONL(r)
}

// JournalCSV writes flight-recorder events as CSV with a header row,
// for spreadsheet and pandas analysis.
func JournalCSV(w io.Writer, events []journal.Event) error {
	return journal.WriteCSV(w, events)
}

// ReadJournalCSV parses a CSV journal dump.
func ReadJournalCSV(r io.Reader) ([]journal.Event, error) {
	return journal.ReadCSV(r)
}

// epochLine is one sealed epoch's reconstructed cut on one JSONL line.
type epochLine struct {
	Epoch       uint64     `json:"epoch"`
	Seq         uint64     `json:"seq"`
	ScheduledNs int64      `json:"scheduled_ns"`
	CompletedNs int64      `json:"completed_ns"`
	SyncNs      int64      `json:"sync_ns"`
	Consistent  bool       `json:"consistent"`
	Base        bool       `json:"base"`
	Deltas      int        `json:"deltas"`
	Units       []unitLine `json:"units"`
}

type unitLine struct {
	Unit       string `json:"unit"`
	Value      uint64 `json:"value"`
	Consistent bool   `json:"consistent"`
}

// SnapshotsJSONL writes a snapshot-history view as JSON Lines: one
// line per retained epoch, each carrying its fully reconstructed cut
// in dense unit order. The view is immutable, so the export is a
// consistent point-in-time dump even while the store keeps sealing.
func SnapshotsJSONL(w io.Writer, v *snapstore.View) error {
	enc := json.NewEncoder(w)
	for _, e := range v.Epochs() {
		st, err := v.State(e.ID)
		if err != nil {
			return err
		}
		line := epochLine{
			Epoch:       uint64(e.ID),
			Seq:         e.Seq,
			ScheduledNs: int64(e.ScheduledAt),
			CompletedNs: int64(e.CompletedAt),
			SyncNs:      int64(e.Sync),
			Consistent:  e.Consistent,
			Base:        e.IsBase(),
			Deltas:      e.DeltaCount(),
			Units:       []unitLine{},
		}
		for i, r := range st.Regs {
			if !r.Present {
				continue
			}
			line.Units = append(line.Units, unitLine{
				Unit:       st.Units[i].String(),
				Value:      r.Value,
				Consistent: r.Consistent,
			})
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return nil
}

// EpochTraceJSONL writes per-epoch causal traces as JSON Lines, one
// epoch per line — the tracer's native interchange format. For a
// deterministic journal the bytes are deterministic, which is what the
// cross-shard equivalence harness compares.
func EpochTraceJSONL(w io.Writer, traces []*epochtrace.EpochTrace) error {
	return epochtrace.WriteJSONL(w, traces)
}

// ReadEpochTraceJSONL parses a JSONL epoch-trace dump.
func ReadEpochTraceJSONL(r io.Reader) ([]*epochtrace.EpochTrace, error) {
	return epochtrace.ReadJSONL(r)
}

// EpochTraceChromeTrace writes per-epoch causal traces in the Chrome
// trace-event format (chrome://tracing, Perfetto): one thread per
// epoch, one span per critical-path segment plus per-switch wavefront
// spans.
func EpochTraceChromeTrace(w io.Writer, traces []*epochtrace.EpochTrace) error {
	return epochtrace.WriteChromeTrace(w, traces)
}

// InvariantsCSV writes an invariant engine's standing and violation
// history as CSV: one "status" row per registered invariant followed
// by one "violation" row per retained violation, oldest first.
func InvariantsCSV(w io.Writer, eng *invariant.Engine) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"kind", "invariant", "epoch", "seq", "evals", "violations", "ok", "detail",
	}); err != nil {
		return err
	}
	for _, st := range eng.Status() {
		if err := cw.Write([]string{
			"status", st.Name, fmt.Sprint(st.LastEpoch), "",
			fmt.Sprint(st.Evals), fmt.Sprint(st.Violations),
			fmt.Sprint(st.OK), st.Detail,
		}); err != nil {
			return err
		}
	}
	for _, v := range eng.Violations() {
		if err := cw.Write([]string{
			"violation", v.Invariant, fmt.Sprint(v.Epoch), fmt.Sprint(v.Seq),
			"", "", "false", v.Detail,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// AuditJSON writes an audit report as indented JSON.
func AuditJSON(w io.Writer, rep *audit.Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// AuditText writes an audit report as a human-readable summary.
func AuditText(w io.Writer, rep *audit.Report) error {
	return rep.WriteText(w)
}
