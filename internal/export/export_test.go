package export

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"speedlight/internal/control"
	"speedlight/internal/dataplane"
	"speedlight/internal/experiments"
	"speedlight/internal/observer"
)

func sampleSnaps() []*observer.GlobalSnapshot {
	return []*observer.GlobalSnapshot{
		{
			ID: 7,
			Results: map[dataplane.UnitID]control.Result{
				{Node: 1, Port: 0, Dir: dataplane.Egress}:  {Value: 20, Consistent: true},
				{Node: 0, Port: 2, Dir: dataplane.Ingress}: {Value: 10, Consistent: true},
				{Node: 0, Port: 1, Dir: dataplane.Ingress}: {Value: 5, Consistent: false},
			},
			Consistent:  false,
			ScheduledAt: 1000,
			CompletedAt: 2000,
		},
	}
}

func TestRowsSortedAndComplete(t *testing.T) {
	rows := Rows(sampleSnaps())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Sorted by switch, port, direction.
	if rows[0].Switch != 0 || rows[0].Port != 1 {
		t.Errorf("first row %+v", rows[0])
	}
	if rows[2].Switch != 1 {
		t.Errorf("last row %+v", rows[2])
	}
	if rows[0].Consistent || !rows[1].Consistent {
		t.Error("consistency flags wrong")
	}
	if rows[0].ScheduledNs != 1000 || rows[0].CompletedNs != 2000 {
		t.Error("timestamps wrong")
	}
}

func TestSnapshotsCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := SnapshotsCSV(&buf, sampleSnaps()); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 { // header + 3 rows
		t.Fatalf("records = %d", len(records))
	}
	if records[0][0] != "snapshot_id" {
		t.Error("header missing")
	}
	if records[3][4] != "20" {
		t.Errorf("value cell = %q", records[3][4])
	}
}

func TestSnapshotsJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := SnapshotsJSON(&buf, sampleSnaps()); err != nil {
		t.Fatal(err)
	}
	var rows []SnapshotRow
	if err := json.Unmarshal(buf.Bytes(), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[2].Value != 20 || rows[2].Direction != "egress" {
		t.Errorf("row = %+v", rows[2])
	}
}

func TestFigureCSV(t *testing.T) {
	f := &experiments.Figure{
		XLabel: "x", YLabel: "y",
		Series: []experiments.Series{
			{Name: "a", Points: []experiments.Point{{X: 1, Y: 2}, {X: 3, Y: 4}}},
			{Name: "b", Points: []experiments.Point{{X: 5, Y: 6}}},
		},
	}
	var buf bytes.Buffer
	if err := FigureCSV(&buf, f); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"series,x,y", "a,1,2", "a,3,4", "b,5,6"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := &experiments.Table{
		Header: []string{"k", "v"},
		Rows:   [][]string{{"a", "1"}, {"b", "2"}},
	}
	var buf bytes.Buffer
	if err := TableCSV(&buf, tb); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 || records[1][1] != "1" {
		t.Errorf("records = %v", records)
	}
}

func TestEmptyInputs(t *testing.T) {
	var buf bytes.Buffer
	if err := SnapshotsCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if err := SnapshotsJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if err := FigureCSV(&buf, &experiments.Figure{}); err != nil {
		t.Fatal(err)
	}
}
