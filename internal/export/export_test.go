package export

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"reflect"

	"speedlight/internal/audit"
	"speedlight/internal/control"
	"speedlight/internal/dataplane"
	"speedlight/internal/experiments"
	"speedlight/internal/journal"
	"speedlight/internal/observer"
	"speedlight/internal/telemetry"
)

func sampleSnaps() []*observer.GlobalSnapshot {
	return []*observer.GlobalSnapshot{
		{
			ID: 7,
			Results: map[dataplane.UnitID]control.Result{
				{Node: 1, Port: 0, Dir: dataplane.Egress}:  {Value: 20, Consistent: true},
				{Node: 0, Port: 2, Dir: dataplane.Ingress}: {Value: 10, Consistent: true},
				{Node: 0, Port: 1, Dir: dataplane.Ingress}: {Value: 5, Consistent: false},
			},
			Consistent:  false,
			ScheduledAt: 1000,
			CompletedAt: 2000,
		},
	}
}

func TestRowsSortedAndComplete(t *testing.T) {
	rows := Rows(sampleSnaps())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Sorted by switch, port, direction.
	if rows[0].Switch != 0 || rows[0].Port != 1 {
		t.Errorf("first row %+v", rows[0])
	}
	if rows[2].Switch != 1 {
		t.Errorf("last row %+v", rows[2])
	}
	if rows[0].Consistent || !rows[1].Consistent {
		t.Error("consistency flags wrong")
	}
	if rows[0].ScheduledNs != 1000 || rows[0].CompletedNs != 2000 {
		t.Error("timestamps wrong")
	}
}

func TestSnapshotsCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := SnapshotsCSV(&buf, sampleSnaps()); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 { // header + 3 rows
		t.Fatalf("records = %d", len(records))
	}
	if records[0][0] != "snapshot_id" {
		t.Error("header missing")
	}
	if records[3][4] != "20" {
		t.Errorf("value cell = %q", records[3][4])
	}
}

func TestSnapshotsJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := SnapshotsJSON(&buf, sampleSnaps()); err != nil {
		t.Fatal(err)
	}
	var rows []SnapshotRow
	if err := json.Unmarshal(buf.Bytes(), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[2].Value != 20 || rows[2].Direction != "egress" {
		t.Errorf("row = %+v", rows[2])
	}
}

func TestFigureCSV(t *testing.T) {
	f := &experiments.Figure{
		XLabel: "x", YLabel: "y",
		Series: []experiments.Series{
			{Name: "a", Points: []experiments.Point{{X: 1, Y: 2}, {X: 3, Y: 4}}},
			{Name: "b", Points: []experiments.Point{{X: 5, Y: 6}}},
		},
	}
	var buf bytes.Buffer
	if err := FigureCSV(&buf, f); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"series,x,y", "a,1,2", "a,3,4", "b,5,6"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := &experiments.Table{
		Header: []string{"k", "v"},
		Rows:   [][]string{{"a", "1"}, {"b", "2"}},
	}
	var buf bytes.Buffer
	if err := TableCSV(&buf, tb); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 || records[1][1] != "1" {
		t.Errorf("records = %v", records)
	}
}

func TestEmptyInputs(t *testing.T) {
	var buf bytes.Buffer
	if err := SnapshotsCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if err := SnapshotsJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if err := FigureCSV(&buf, &experiments.Figure{}); err != nil {
		t.Fatal(err)
	}
	if err := TelemetryCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if err := SpansCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTelemetryCSV(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("pkts_total", "packets").Add(42)
	reg.Gauge("depth", "queue depth").Set(-3)
	h := reg.Histogram("lat_us", "latency", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)

	var buf bytes.Buffer
	if err := TelemetryCSV(&buf, reg); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// header + counter + gauge + 6 histogram stats.
	if len(records) != 9 {
		t.Fatalf("records = %d:\n%v", len(records), records)
	}
	got := map[string]string{}
	for _, r := range records[1:] {
		got[r[0]+"/"+r[1]] = r[2]
	}
	if got["pkts_total/value"] != "42" {
		t.Errorf("counter = %q", got["pkts_total/value"])
	}
	if got["depth/value"] != "-3" {
		t.Errorf("gauge = %q", got["depth/value"])
	}
	if got["lat_us/count"] != "2" || got["lat_us/sum"] != "55" || got["lat_us/max"] != "50" {
		t.Errorf("histogram stats = %v", got)
	}
}

func TestSpansCSV(t *testing.T) {
	tr := telemetry.NewTracer(0)
	tr.BeginSnapshot(1, 100)
	tr.UnitResult(1, 4, 150)
	tr.UnitResult(1, 4, 180)
	tr.UnitResult(1, 9, 200)
	tr.EndSnapshot(1, 250, true)

	var buf bytes.Buffer
	if err := SpansCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// header + snapshot row + 2 device rows.
	if len(records) != 4 {
		t.Fatalf("records = %d:\n%v", len(records), records)
	}
	if records[1][0] != "1" || records[1][1] != "" || records[1][4] != "150" || records[1][5] != "true" {
		t.Errorf("snapshot row = %v", records[1])
	}
	if records[2][1] != "4" || records[2][2] != "150" || records[2][3] != "180" || records[2][4] != "30" {
		t.Errorf("device row = %v", records[2])
	}
}

func sampleJournal() []journal.Event {
	evs := []journal.Event{
		journal.Config(256, true, true),
		journal.Register(0, 1, journal.DirIngress),
		journal.ObsBegin(1000, 1),
		journal.Record(1500, 0, 1, journal.DirIngress, 4, 0, 1, 1),
		journal.Absorb(1600, 0, 1, journal.DirIngress, 4, 0, 1),
		journal.NotifDropped(1700, 0, 1, journal.DirIngress, 1),
		journal.ObsComplete(2000, 1, true, 0),
	}
	for i := range evs {
		evs[i].Seq = uint64(i + 1)
	}
	return evs
}

func TestJournalJSONLRoundTrip(t *testing.T) {
	evs := sampleJournal()
	var buf bytes.Buffer
	if err := JournalJSONL(&buf, evs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJournalJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatalf("JSONL round trip mismatch:\ngot  %+v\nwant %+v", got, evs)
	}
}

func TestJournalCSVRoundTrip(t *testing.T) {
	evs := sampleJournal()
	var buf bytes.Buffer
	if err := JournalCSV(&buf, evs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJournalCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatalf("CSV round trip mismatch:\ngot  %+v\nwant %+v", got, evs)
	}
}

func TestAuditExports(t *testing.T) {
	rep := audit.Run(sampleJournal(), audit.Config{})
	var js bytes.Buffer
	if err := AuditJSON(&js, rep); err != nil {
		t.Fatal(err)
	}
	var back audit.Report
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("AuditJSON output does not parse: %v", err)
	}
	if len(back.Verdicts) != len(rep.Verdicts) {
		t.Fatalf("verdicts lost in JSON: got %d want %d", len(back.Verdicts), len(rep.Verdicts))
	}
	var txt bytes.Buffer
	if err := AuditText(&txt, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "snapshot") {
		t.Fatalf("AuditText output looks empty: %q", txt.String())
	}
}
