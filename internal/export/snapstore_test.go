package export

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"speedlight/internal/dataplane"
	"speedlight/internal/invariant"
	"speedlight/internal/snapstore"
)

func TestSnapshotsJSONL(t *testing.T) {
	s := snapstore.New(snapstore.Config{})
	snaps := sampleSnaps()
	s.Ingest(snaps[0], 0)
	second := *snaps[0]
	second.ID = 8
	second.Consistent = true
	s.Ingest(&second, 0)

	var buf bytes.Buffer
	if err := SnapshotsJSONL(&buf, s.View()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var first struct {
		Epoch uint64 `json:"epoch"`
		Base  bool   `json:"base"`
		Units []struct {
			Unit  string `json:"unit"`
			Value uint64 `json:"value"`
		} `json:"units"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1: %v", err)
	}
	if first.Epoch != 7 || !first.Base {
		t.Fatalf("line 1 = %+v, want epoch 7 base", first)
	}
	if len(first.Units) != 3 {
		t.Fatalf("line 1 has %d units, want 3", len(first.Units))
	}
	// Dense unit order is the store's canonical (switch, port, dir)
	// order from Ingest.
	if first.Units[0].Unit != "sw0/p1/ingress" || first.Units[0].Value != 5 {
		t.Fatalf("first unit = %+v", first.Units[0])
	}
}

func TestSnapshotsJSONLEmptyView(t *testing.T) {
	s := snapstore.New(snapstore.Config{})
	var buf bytes.Buffer
	if err := SnapshotsJSONL(&buf, s.View()); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty view wrote %q", buf.String())
	}
}

func TestInvariantsCSV(t *testing.T) {
	s := snapstore.New(snapstore.Config{})
	eng := invariant.New(invariant.Config{})
	u := dataplane.UnitID{Node: 0, Port: 1, Dir: dataplane.Ingress}
	eng.Register(invariant.Bound("headroom", []dataplane.UnitID{u}, 0, 0))

	snaps := sampleSnaps()
	snaps[0].Consistent = true
	ep := s.Ingest(snaps[0], 0)
	eng.Eval(s.View(), ep)

	var buf bytes.Buffer
	if err := InvariantsCSV(&buf, eng); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // header + 1 status + 1 violation
		t.Fatalf("rows = %d, want 3:\n%v", len(rows), rows)
	}
	if rows[0][0] != "kind" || rows[0][1] != "invariant" {
		t.Fatalf("header = %v", rows[0])
	}
	if rows[1][0] != "status" || rows[1][1] != "headroom" || rows[1][6] != "false" {
		t.Fatalf("status row = %v", rows[1])
	}
	if rows[2][0] != "violation" || rows[2][2] != "7" || rows[2][7] == "" {
		t.Fatalf("violation row = %v", rows[2])
	}
}
