package audit

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"speedlight/internal/journal"
	"speedlight/internal/packet"
)

// seq stamps events with sequence numbers in slice order, as a shared
// journal.Set sequencer would.
func seq(evs ...journal.Event) []journal.Event {
	for i := range evs {
		evs[i].Seq = uint64(i + 1)
	}
	return evs
}

func verdictFor(t *testing.T, rep *Report, id packet.SeqID) Verdict {
	t.Helper()
	for _, v := range rep.Verdicts {
		if v.SnapshotID == id {
			return v
		}
	}
	t.Fatalf("no verdict for snapshot %d in %+v", id, rep.Verdicts)
	return Verdict{}
}

func TestCleanSnapshotAuditsConsistent(t *testing.T) {
	evs := seq(
		journal.Config(256, true, false),
		journal.Register(0, 0, journal.DirIngress),
		journal.Register(1, 0, journal.DirIngress),
		journal.ObsBegin(100, 1),
		journal.Record(110, 0, 0, journal.DirIngress, -1, 0, 1, 1),
		journal.Record(120, 1, 0, journal.DirIngress, 0, 0, 1, 1),
		journal.ObsResult(130, 0, 0, journal.DirIngress, 1, true),
		journal.ObsResult(140, 1, 0, journal.DirIngress, 1, true),
		journal.ObsComplete(150, 1, true, 0),
	)
	rep := Run(evs, Config{})
	if rep.MaxID != 256 || !rep.Wraparound || rep.ChannelState {
		t.Fatalf("config not picked up from journal: %+v", rep)
	}
	v := verdictFor(t, rep, 1)
	if v.Kind != Consistent || v.Disagreement || v.ObserverStricter {
		t.Fatalf("verdict = %+v, want clean Consistent", v)
	}
	if !v.ObserverSeen || !v.ObserverConsistent {
		t.Fatalf("observer cross-check missing: %+v", v)
	}
	if rep.Truncated || rep.Disagreements != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestSkippedIDInChannelStateModeIsInconsistent(t *testing.T) {
	evs := seq(
		journal.Config(256, true, true),
		journal.Register(0, 0, journal.DirIngress),
		journal.ObsBegin(100, 1),
		journal.ObsBegin(101, 2),
		// The unit jumps 0 -> 2, skipping snapshot 1 entirely.
		journal.Record(110, 0, 0, journal.DirIngress, 0, 0, 2, 2),
		journal.ObsResult(130, 0, 0, journal.DirIngress, 1, true),
		journal.ObsResult(131, 0, 0, journal.DirIngress, 2, true),
		// Observer (wrongly, for this synthetic stream) calls 1 consistent.
		journal.ObsComplete(150, 1, true, 0),
		journal.ObsComplete(151, 2, true, 0),
	)
	rep := Run(evs, Config{})
	v := verdictFor(t, rep, 1)
	if v.Kind != Inconsistent {
		t.Fatalf("verdict = %+v, want Inconsistent", v)
	}
	if !strings.Contains(v.Cause, "skipped snapshot 1") {
		t.Fatalf("cause = %q", v.Cause)
	}
	if len(v.Witness) != 1 || v.Witness[0].Kind != journal.KindRecord {
		t.Fatalf("witness = %+v, want the skipping record", v.Witness)
	}
	if !v.Disagreement || rep.Disagreements != 1 {
		t.Fatalf("disagreement not flagged: %+v", v)
	}
	if v2 := verdictFor(t, rep, 2); v2.Kind != Consistent {
		t.Fatalf("snapshot 2 = %+v, want Consistent", v2)
	}
}

func TestSkippedIDWithoutChannelStateIsConsistent(t *testing.T) {
	evs := seq(
		journal.Config(256, true, false),
		journal.Register(0, 0, journal.DirIngress),
		journal.ObsBegin(100, 1),
		journal.ObsBegin(101, 2),
		journal.Record(110, 0, 0, journal.DirIngress, 0, 0, 2, 2),
		journal.ObsResult(130, 0, 0, journal.DirIngress, 1, true),
		journal.ObsResult(131, 0, 0, journal.DirIngress, 2, true),
		journal.ObsComplete(150, 1, true, 0),
		journal.ObsComplete(151, 2, true, 0),
	)
	rep := Run(evs, Config{})
	if v := verdictFor(t, rep, 1); v.Kind != Consistent {
		t.Fatalf("verdict = %+v; without channel state a skipped ID inherits its value", v)
	}
}

func TestAbsorbAcrossCutsIsInconsistent(t *testing.T) {
	evs := seq(
		journal.Config(256, true, true),
		journal.Register(0, 0, journal.DirIngress),
		journal.ObsBegin(100, 6),
		journal.ObsBegin(101, 7),
		journal.ObsBegin(102, 8),
		// A packet stamped at cut 5 is absorbed into cut 8: cuts 6 and 7
		// were crossed uncounted.
		journal.Absorb(110, 0, 0, journal.DirIngress, 1, 5, 8),
		journal.ObsResult(120, 0, 0, journal.DirIngress, 6, true),
		journal.ObsResult(121, 0, 0, journal.DirIngress, 7, true),
		journal.ObsResult(122, 0, 0, journal.DirIngress, 8, true),
		journal.ObsComplete(130, 6, true, 0),
		journal.ObsComplete(131, 7, true, 0),
		journal.ObsComplete(132, 8, true, 0),
	)
	rep := Run(evs, Config{})
	for _, id := range []packet.SeqID{6, 7} {
		v := verdictFor(t, rep, id)
		if v.Kind != Inconsistent {
			t.Fatalf("snapshot %d = %+v, want Inconsistent", id, v)
		}
		if len(v.Witness) != 1 || v.Witness[0].Kind != journal.KindAbsorb {
			t.Fatalf("snapshot %d witness = %+v", id, v.Witness)
		}
	}
	if v := verdictFor(t, rep, 8); v.Kind != Consistent {
		t.Fatalf("snapshot 8 = %+v; the absorbing cut itself is fine", v)
	}
	if rep.Disagreements != 2 {
		t.Fatalf("Disagreements = %d, want 2", rep.Disagreements)
	}
}

func TestAbsorbMissIsInconsistent(t *testing.T) {
	evs := seq(
		journal.Config(256, true, true),
		journal.Register(0, 0, journal.DirIngress),
		journal.ObsBegin(100, 4),
		journal.AbsorbMiss(110, 0, 0, journal.DirIngress, 1, 3, 4),
		journal.ObsResult(120, 0, 0, journal.DirIngress, 4, true),
		journal.ObsComplete(130, 4, true, 0),
	)
	rep := Run(evs, Config{})
	v := verdictFor(t, rep, 4)
	if v.Kind != Inconsistent || !strings.Contains(v.Cause, "lost") {
		t.Fatalf("verdict = %+v, want Inconsistent channel-state loss", v)
	}
}

func TestNeverFinalizedSnapshotIsIncompleteWithStuckUnits(t *testing.T) {
	evs := seq(
		journal.Config(256, true, false),
		journal.Register(0, 0, journal.DirIngress),
		journal.Register(1, 0, journal.DirIngress),
		journal.ObsBegin(100, 3),
		journal.Record(110, 0, 0, journal.DirIngress, -1, 2, 3, 3),
		journal.ObsResult(120, 0, 0, journal.DirIngress, 3, true),
		// Switch 1's notification never arrives; the dataplane dropped it.
		journal.NotifDropped(115, 1, 0, journal.DirIngress, 3),
	)
	rep := Run(evs, Config{})
	v := verdictFor(t, rep, 3)
	if v.Kind != Incomplete {
		t.Fatalf("verdict = %+v, want Incomplete", v)
	}
	if len(v.Stuck) != 1 || v.Stuck[0] != "sw1/port0/ingress" {
		t.Fatalf("stuck = %v", v.Stuck)
	}
	if len(v.Witness) != 1 || v.Witness[0].Kind != journal.KindNotifDrop {
		t.Fatalf("witness = %+v, want the dropped notification", v.Witness)
	}
}

func TestExcludedDevicesMakeSnapshotIncomplete(t *testing.T) {
	evs := seq(
		journal.Config(256, true, false),
		journal.Register(0, 0, journal.DirIngress),
		journal.Register(1, 0, journal.DirIngress),
		journal.ObsBegin(100, 5),
		journal.Record(105, 0, 0, journal.DirIngress, -1, 4, 5, 5),
		journal.ObsResult(110, 0, 0, journal.DirIngress, 5, true),
		journal.ObsRetry(120, 5, 1),
		journal.ObsExclude(130, 5, 1),
		journal.ObsComplete(140, 5, true, 1),
	)
	rep := Run(evs, Config{})
	v := verdictFor(t, rep, 5)
	if v.Kind != Incomplete || !strings.Contains(v.Cause, "excluded") {
		t.Fatalf("verdict = %+v, want Incomplete via exclusion", v)
	}
	if len(v.Stuck) != 1 || v.Stuck[0] != "sw1" {
		t.Fatalf("stuck = %v", v.Stuck)
	}
	if len(v.Witness) == 0 || v.Witness[0].Kind != journal.KindObsExclude {
		t.Fatalf("witness = %+v", v.Witness)
	}
}

func TestRolloverWindowViolation(t *testing.T) {
	evs := seq(
		journal.Config(16, true, false),
		journal.Register(0, 0, journal.DirIngress),
		journal.ObsBegin(100, 1),
		// Snapshot 1 is still open when snapshot 9 begins: 9-1 >= 16/2.
		journal.ObsBegin(200, 9),
	)
	rep := Run(evs, Config{})
	v := verdictFor(t, rep, 9)
	if v.Kind != Inconsistent || !strings.Contains(v.Cause, "rollover window") {
		t.Fatalf("verdict = %+v, want rollover-window violation", v)
	}
	if len(v.Witness) != 2 {
		t.Fatalf("witness = %+v, want both ObsBegin events", v.Witness)
	}
}

func TestIDRegressionIsInconsistent(t *testing.T) {
	evs := seq(
		journal.Config(256, true, false),
		journal.Register(0, 0, journal.DirIngress),
		journal.ObsBegin(100, 2),
		journal.Record(110, 0, 0, journal.DirIngress, 0, 0, 2, 2),
		journal.Record(120, 0, 0, journal.DirIngress, 0, 1, 2, 2),
		journal.ObsResult(130, 0, 0, journal.DirIngress, 2, true),
		journal.ObsComplete(140, 2, true, 0),
	)
	rep := Run(evs, Config{})
	v := verdictFor(t, rep, 2)
	if v.Kind != Inconsistent || !strings.Contains(v.Cause, "regressed") {
		t.Fatalf("verdict = %+v, want ID regression", v)
	}
}

func TestChainGapMarksReportTruncated(t *testing.T) {
	evs := seq(
		journal.Config(256, true, false),
		journal.Register(0, 0, journal.DirIngress),
		journal.ObsBegin(100, 6),
		journal.Record(110, 0, 0, journal.DirIngress, 0, 0, 1, 1),
		// Ring overwrote records 2..5.
		journal.Record(120, 0, 0, journal.DirIngress, 0, 5, 6, 6),
		journal.ObsResult(130, 0, 0, journal.DirIngress, 6, true),
		journal.ObsComplete(140, 6, true, 0),
	)
	rep := Run(evs, Config{})
	if !rep.Truncated {
		t.Fatal("report should be marked Truncated")
	}
	if v := verdictFor(t, rep, 6); v.Kind != Consistent {
		t.Fatalf("verdict = %+v; a journal gap alone is not a violation", v)
	}
}

func TestObserverStricterIsNotedNotCountedAsDisagreement(t *testing.T) {
	evs := seq(
		journal.Config(256, true, false),
		journal.Register(0, 0, journal.DirIngress),
		journal.ObsBegin(100, 1),
		journal.Record(110, 0, 0, journal.DirIngress, -1, 0, 1, 1),
		journal.ObsResult(120, 0, 0, journal.DirIngress, 1, false),
		journal.ObsComplete(130, 1, false, 0),
	)
	rep := Run(evs, Config{})
	v := verdictFor(t, rep, 1)
	if v.Kind != Consistent || !v.ObserverStricter || v.Disagreement {
		t.Fatalf("verdict = %+v, want Consistent + ObserverStricter", v)
	}
	if rep.Disagreements != 0 {
		t.Fatalf("Disagreements = %d, want 0", rep.Disagreements)
	}
}

func TestConfigFallbackWhenJournalHasNoConfigEvent(t *testing.T) {
	evs := seq(
		journal.Register(0, 0, journal.DirIngress),
		journal.ObsBegin(100, 1),
		journal.ObsBegin(101, 2),
		journal.Record(110, 0, 0, journal.DirIngress, 0, 0, 2, 2),
		journal.ObsResult(120, 0, 0, journal.DirIngress, 2, true),
		journal.ObsComplete(130, 1, true, 0),
		journal.ObsComplete(131, 2, true, 0),
	)
	rep := Run(evs, Config{MaxID: 64, Wraparound: true, ChannelState: true})
	if rep.MaxID != 64 || !rep.ChannelState {
		t.Fatalf("fallback config ignored: %+v", rep)
	}
	if v := verdictFor(t, rep, 1); v.Kind != Inconsistent {
		t.Fatalf("verdict = %+v, want skip flagged under fallback CS config", v)
	}
}

func TestWriteTextRendersVerdictsAndWitnesses(t *testing.T) {
	evs := seq(
		journal.Config(256, true, true),
		journal.Register(0, 0, journal.DirIngress),
		journal.ObsBegin(100, 1),
		journal.ObsBegin(101, 2),
		journal.Record(110, 0, 0, journal.DirIngress, 0, 0, 2, 2),
		journal.ObsResult(120, 0, 0, journal.DirIngress, 2, true),
		journal.ObsComplete(130, 1, true, 0),
		journal.ObsComplete(131, 2, true, 0),
	)
	rep := Run(evs, Config{})
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"snapshots: 2 audited",
		"snapshot 1: INCONSISTENT",
		"witness:",
		"DISAGREEMENT",
		"snapshot 2: CONSISTENT",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText output missing %q:\n%s", want, out)
		}
	}
}

func TestHTTPHandler(t *testing.T) {
	rep := Run(seq(
		journal.Config(256, true, false),
		journal.Register(0, 0, journal.DirIngress),
		journal.ObsBegin(100, 1),
		journal.Record(110, 0, 0, journal.DirIngress, -1, 0, 1, 1),
		journal.ObsResult(120, 0, 0, journal.DirIngress, 1, true),
		journal.ObsComplete(130, 1, true, 0),
	), Config{})
	h := HTTPHandler(func() *Report { return rep })

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/audit", nil))
	var got Report
	if err := json.NewDecoder(rec.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Verdicts) != 1 || got.Verdicts[0].SnapshotID != 1 {
		t.Fatalf("JSON endpoint: %+v", got)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/audit?format=text", nil))
	if !strings.Contains(rec.Body.String(), "snapshot 1: CONSISTENT") {
		t.Fatalf("text endpoint: %q", rec.Body.String())
	}

	h = HTTPHandler(func() *Report { return nil })
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/audit", nil))
	if rec.Code != 503 {
		t.Fatalf("nil report should 503, got %d", rec.Code)
	}
}
