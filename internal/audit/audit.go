// Package audit replays a journal of protocol events and mechanically
// verifies the paper's causal-consistency invariants for every global
// snapshot, turning "the counter says a snapshot was inconsistent"
// into a concrete witness chain of events that violated the cut.
//
// The audited invariants (see DESIGN.md for the mapping to the paper's
// Section 3/4 protocol rules):
//
//   - Exactly-once recording: every registered processing unit records
//     exactly once per snapshot ID; in channel-state mode a skipped ID
//     means the unit's in-flight accounting for that cut is lost.
//   - Cut closure: no in-flight (pre-snapshot) packet is counted in a
//     later cut than the one it crossed — an absorb into slot C of a
//     packet stamped P < C-1 leaves every cut strictly between P and C
//     missing that packet.
//   - Channel-state balance: an in-flight packet that finds no open
//     slot (absorb miss) is lost from its cut entirely.
//   - Monotone per-unit IDs: a unit's snapshot ID never regresses.
//   - Rollover window: with ID wraparound enabled, no snapshot begins
//     while an open snapshot is more than MaxID/2 behind (the paper's
//     no-lapping rule, Section 5.3).
//
// Each snapshot receives a verdict — Consistent, Inconsistent with a
// cause and witness events, or Incomplete with the stuck units — and
// the verdict is cross-checked against the observer's own consistency
// flag. The observer is deliberately conservative (it marks skipped
// IDs inconsistent without proving a packet crossed the cut), so
// observer-stricter-than-auditor is expected and noted; the reverse —
// the auditor proving a violation the observer missed — is a defect
// and counted in Report.Disagreements.
package audit

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"

	"speedlight/internal/journal"
	"speedlight/internal/packet"
)

// Kind classifies a snapshot verdict.
type Kind int

const (
	// Consistent: every invariant holds and the snapshot completed.
	Consistent Kind = iota
	// Inconsistent: at least one invariant is violated; Witness holds
	// the proving events.
	Inconsistent
	// Incomplete: the snapshot never finalized, or finalized with
	// excluded devices; Stuck names the missing units.
	Incomplete
)

// String returns the verdict kind's name.
func (k Kind) String() string {
	switch k {
	case Consistent:
		return "consistent"
	case Inconsistent:
		return "inconsistent"
	case Incomplete:
		return "incomplete"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// MarshalJSON encodes the kind as its name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON decodes a kind name.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	switch s {
	case "consistent":
		*k = Consistent
	case "inconsistent":
		*k = Inconsistent
	case "incomplete":
		*k = Incomplete
	default:
		return fmt.Errorf("audit: unknown verdict kind %q", s)
	}
	return nil
}

// Verdict is the audit outcome for one global snapshot.
type Verdict struct {
	SnapshotID packet.SeqID `json:"snapshot_id"`
	Kind       Kind         `json:"kind"`
	// Cause explains an Inconsistent or Incomplete verdict.
	Cause string `json:"cause,omitempty"`
	// Witness holds the journal events that prove the verdict.
	Witness []journal.Event `json:"witness,omitempty"`
	// Stuck names units or devices still owed to an Incomplete snapshot.
	Stuck []string `json:"stuck,omitempty"`

	// ObserverSeen is true when the journal contains the observer's own
	// finalization of this snapshot; ObserverConsistent is its flag.
	ObserverSeen       bool `json:"observer_seen"`
	ObserverConsistent bool `json:"observer_consistent"`
	// Disagreement is the defect case: the auditor proved a violation
	// but the observer reported the snapshot consistent.
	Disagreement bool `json:"disagreement"`
	// ObserverStricter is the expected case: the observer flagged the
	// snapshot inconsistent although no audited invariant is violated
	// (its detection is conservative by design).
	ObserverStricter bool `json:"observer_stricter"`
}

// Report is the audit of one journal.
type Report struct {
	Events       int    `json:"events"`
	MaxID        uint64 `json:"max_id"`
	Wraparound   bool   `json:"wraparound"`
	ChannelState bool   `json:"channel_state"`

	Verdicts []Verdict `json:"verdicts"`

	// Disagreements counts verdicts where the auditor proved a
	// violation the observer missed — each one is a defect.
	Disagreements int `json:"disagreements"`
	// Truncated notes that the per-unit record chains have gaps,
	// meaning the ring overwrote events and absence of evidence is not
	// evidence of absence.
	Truncated bool `json:"truncated"`
}

// Counts returns how many verdicts landed in each kind.
func (r *Report) Counts() (consistent, inconsistent, incomplete int) {
	for _, v := range r.Verdicts {
		switch v.Kind {
		case Consistent:
			consistent++
		case Inconsistent:
			inconsistent++
		case Incomplete:
			incomplete++
		}
	}
	return
}

// Config seeds deployment parameters for journals that carry no
// KindConfig event; a KindConfig event in the journal wins.
type Config struct {
	MaxID        uint64
	Wraparound   bool
	ChannelState bool
}

// unitKey identifies a processing unit.
type unitKey struct {
	sw, port int
	dir      journal.Dir
}

func (u unitKey) String() string {
	return fmt.Sprintf("sw%d/port%d/%s", u.sw, u.port, u.dir)
}

func unitOf(ev journal.Event) unitKey {
	return unitKey{sw: ev.Switch, port: ev.Port, dir: ev.Dir}
}

// violation is one proven invariant breach, attached to a snapshot ID.
type violation struct {
	cause   string
	witness []journal.Event
}

const maxWitness = 16

// Run audits a journal. Events may arrive in any order; they are
// replayed by sequence number.
func Run(events []journal.Event, cfg Config) *Report {
	evs := make([]journal.Event, len(events))
	copy(evs, events)
	sort.Slice(evs, func(a, b int) bool { return evs[a].Seq < evs[b].Seq })

	rep := &Report{
		Events:       len(evs),
		MaxID:        cfg.MaxID,
		Wraparound:   cfg.Wraparound,
		ChannelState: cfg.ChannelState,
	}

	// First pass: deployment config, unit registry, per-unit record
	// chains, per-snapshot observer lifecycle, and supporting events.
	expected := map[unitKey]bool{}
	records := map[unitKey][]journal.Event{}
	var absorbs, misses []journal.Event
	drops := map[int][]journal.Event{} // switch -> dropped notifications
	type snapState struct {
		begun    bool
		results  map[unitKey]journal.Event
		excluded []journal.Event
		retries  []journal.Event
		complete *journal.Event
	}
	snaps := map[packet.SeqID]*snapState{}
	stateOf := func(id packet.SeqID) *snapState {
		s, ok := snaps[id]
		if !ok {
			s = &snapState{results: map[unitKey]journal.Event{}}
			snaps[id] = s
		}
		return s
	}
	rollViolations := map[packet.SeqID][]violation{}
	open := map[packet.SeqID]journal.Event{} // begun, not yet complete
	// Churn awareness: a switch-down event ends its units' record
	// chains (teardown flushes their state), and a switch-up restarts
	// them from a zeroed baseline — neither is a recording violation.
	churnDowns := map[int][]uint64{} // switch -> seqs of churn switch-down
	churnUps := map[int][]uint64{}   // switch -> seqs of churn switch-up
	beginSeq := map[packet.SeqID]uint64{}

	for _, ev := range evs {
		switch ev.Kind {
		case journal.KindConfig:
			rep.MaxID = ev.Value
			rep.Wraparound = ev.NewID == 1
			rep.ChannelState = ev.Flag
		case journal.KindRegister:
			expected[unitOf(ev)] = true
		case journal.KindRecord:
			records[unitOf(ev)] = append(records[unitOf(ev)], ev)
		case journal.KindAbsorb:
			absorbs = append(absorbs, ev)
		case journal.KindAbsorbMiss:
			misses = append(misses, ev)
		case journal.KindNotifDrop:
			drops[ev.Switch] = append(drops[ev.Switch], ev)
		case journal.KindObsBegin:
			// No-lapping rule: beginning an ID more than MaxID/2 ahead
			// of a still-open snapshot would let the wrapped ID lap it.
			if rep.Wraparound && rep.MaxID > 0 {
				// Sorted: violation order must not depend on map order.
				oldIDs := make([]packet.SeqID, 0, len(open))
				for oldID := range open {
					oldIDs = append(oldIDs, oldID)
				}
				sort.Slice(oldIDs, func(a, b int) bool { return oldIDs[a] < oldIDs[b] })
				for _, oldID := range oldIDs {
					if uint64(ev.SnapshotID-oldID) >= rep.MaxID/2 {
						rollViolations[ev.SnapshotID] = append(rollViolations[ev.SnapshotID], violation{
							cause:   fmt.Sprintf("rollover window violated: snapshot %d begun while snapshot %d is still open (window %d)", ev.SnapshotID, oldID, rep.MaxID/2),
							witness: []journal.Event{open[oldID], ev},
						})
					}
				}
			}
			open[ev.SnapshotID] = ev
			stateOf(ev.SnapshotID).begun = true
			beginSeq[ev.SnapshotID] = ev.Seq
		case journal.KindObsResult:
			stateOf(ev.SnapshotID).results[unitOf(ev)] = ev
		case journal.KindObsRetry:
			stateOf(ev.SnapshotID).retries = append(stateOf(ev.SnapshotID).retries, ev)
		case journal.KindObsExclude:
			stateOf(ev.SnapshotID).excluded = append(stateOf(ev.SnapshotID).excluded, ev)
		case journal.KindObsComplete:
			e := ev
			stateOf(ev.SnapshotID).complete = &e
			delete(open, ev.SnapshotID)
		case journal.KindChurn:
			switch ev.Value {
			case journal.ChurnSwitchDown:
				churnDowns[ev.Switch] = append(churnDowns[ev.Switch], ev.Seq)
			case journal.ChurnSwitchUp:
				churnUps[ev.Switch] = append(churnUps[ev.Switch], ev.Seq)
			}
		}
	}

	// Fall back to observed units when the journal predates
	// registration (e.g. a flight-recorder tail).
	if len(expected) == 0 {
		for u := range records {
			expected[u] = true
		}
	}

	// seqBetween reports whether any seq in seqs falls strictly inside
	// (a, b); lastBefore returns the largest seq below s (0 if none).
	seqBetween := func(seqs []uint64, a, b uint64) bool {
		for _, s := range seqs {
			if s > a && s < b {
				return true
			}
		}
		return false
	}
	lastBefore := func(seqs []uint64, s uint64) uint64 {
		var out uint64
		for _, q := range seqs {
			if q < s && q > out {
				out = q
			}
		}
		return out
	}

	// beganDuringOutage reports whether snapshot id's initiation falls
	// inside some switch's down segment whose reboot precedes seq. Such
	// a cut never enrolled that switch, so stale stamps it emits after
	// rebooting (from its zeroed baseline) are not closure violations
	// of that cut. Iteration order doesn't matter: the result is a
	// bare predicate, so map ranging stays deterministic-safe.
	beganDuringOutage := func(id packet.SeqID, seq uint64) bool {
		bs, ok := beginSeq[id]
		if !ok {
			return false
		}
		for sw, downs := range churnDowns {
			ups := churnUps[sw]
			for _, d := range downs {
				if d >= bs {
					continue
				}
				var u uint64 // first reboot after this down
				for _, q := range ups {
					if q > d && (u == 0 || q < u) {
						u = q
					}
				}
				if u != 0 && u > bs && u <= seq {
					return true
				}
			}
		}
		return false
	}

	// Deterministic unit order: with several violating units, which one
	// becomes a verdict's Cause must not depend on map iteration.
	units := make([]unitKey, 0, len(records))
	for u := range records {
		units = append(units, u)
	}
	sort.Slice(units, func(a, b int) bool {
		x, y := units[a], units[b]
		if x.sw != y.sw {
			return x.sw < y.sw
		}
		if x.port != y.port {
			return x.port < y.port
		}
		return x.dir < y.dir
	})

	// Per-unit chain integrity: IDs must advance monotonically, and
	// consecutive records must chain OldID == previous NewID; a gap
	// means the ring overwrote events. A churn reboot between two
	// records legitimately restarts the chain from a zeroed baseline.
	chainViolations := map[packet.SeqID][]violation{}
	for _, u := range units {
		chain := records[u]
		for i := 1; i < len(chain); i++ {
			prev, cur := chain[i-1], chain[i]
			if seqBetween(churnDowns[u.sw], prev.Seq, cur.Seq) {
				continue
			}
			switch {
			case cur.NewID <= prev.NewID || cur.OldID < prev.NewID:
				chainViolations[cur.NewID] = append(chainViolations[cur.NewID], violation{
					cause:   fmt.Sprintf("unit %s snapshot ID regressed: recorded %d after %d", u, cur.NewID, prev.NewID),
					witness: []journal.Event{prev, cur},
				})
			case cur.OldID > prev.NewID:
				rep.Truncated = true
			}
		}
	}

	// Which snapshot IDs to audit: everything the observer began, plus
	// anything recorded or completed without a begin (partial journal).
	idSet := map[packet.SeqID]bool{}
	for id := range snaps {
		idSet[id] = true
	}
	ids := make([]packet.SeqID, 0, len(idSet))
	for id := range idSet {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })

	for _, id := range ids {
		st := stateOf(id)
		var violations []violation

		// Exactly-once recording per unit. A unit whose chain jumps
		// over id skipped it; in channel-state mode that cut's
		// in-flight accounting is unrecoverable.
		if rep.ChannelState {
			for _, u := range units {
				for _, rec := range records[u] {
					if rec.OldID < id && id < rec.NewID {
						// A post-reboot record jumps from a zeroed baseline
						// over every snapshot that ran while the switch was
						// out of the fabric; those cuts never expected this
						// unit (the observer unregistered its device), so
						// the jump is not a skip.
						if up := lastBefore(churnUps[u.sw], rec.Seq); up > 0 {
							if bs, ok := beginSeq[id]; ok && bs < up {
								continue
							}
						}
						violations = append(violations, violation{
							cause:   fmt.Sprintf("unit %s skipped snapshot %d (advanced %d->%d), losing its channel state for that cut", u, id, rec.OldID, rec.NewID),
							witness: []journal.Event{rec},
						})
					}
				}
			}
		}

		// Cut closure: an in-flight packet stamped P absorbed into slot
		// C was in flight across every cut in (P, C) but counted only
		// in C.
		for _, ab := range absorbs {
			if ab.OldID < id && id < ab.NewID {
				if beganDuringOutage(id, ab.Seq) {
					continue
				}
				violations = append(violations, violation{
					cause:   fmt.Sprintf("in-flight packet from cut %d absorbed into cut %d crosses snapshot %d uncounted at unit %s", ab.OldID, ab.NewID, id, unitOf(ab)),
					witness: []journal.Event{ab},
				})
			}
		}
		// Channel-state balance: a missed absorb loses the packet from
		// the very cut it arrived in.
		for _, m := range misses {
			if m.NewID == id {
				violations = append(violations, violation{
					cause:   fmt.Sprintf("in-flight packet from cut %d lost at unit %s: no open channel-state slot for snapshot %d", m.OldID, unitOf(m), id),
					witness: []journal.Event{m},
				})
			}
		}

		violations = append(violations, chainViolations[id]...)
		violations = append(violations, rollViolations[id]...)

		v := Verdict{SnapshotID: id}
		if st.complete != nil {
			v.ObserverSeen = true
			v.ObserverConsistent = st.complete.Flag
		}

		switch {
		case len(violations) > 0:
			v.Kind = Inconsistent
			v.Cause = violations[0].cause
			for _, viol := range violations {
				v.Witness = append(v.Witness, viol.witness...)
			}
			v.Witness = dedupeEvents(v.Witness)
			if len(v.Witness) > maxWitness {
				v.Witness = v.Witness[:maxWitness]
			}
			if v.ObserverSeen && v.ObserverConsistent {
				v.Disagreement = true
				rep.Disagreements++
			}
		case st.complete == nil && st.begun:
			v.Kind = Incomplete
			v.Cause = fmt.Sprintf("snapshot %d never finalized", id)
			v.Stuck, v.Witness = stuckUnits(id, expected, st.results, records, drops)
		case st.complete != nil && st.complete.Value > 0:
			v.Kind = Incomplete
			v.Cause = fmt.Sprintf("snapshot %d finalized with %d device(s) excluded", id, st.complete.Value)
			for _, ex := range st.excluded {
				v.Stuck = append(v.Stuck, fmt.Sprintf("sw%d", ex.Switch))
				v.Witness = append(v.Witness, ex)
				v.Witness = append(v.Witness, drops[ex.Switch]...)
			}
			v.Witness = dedupeEvents(v.Witness)
			if len(v.Witness) > maxWitness {
				v.Witness = v.Witness[:maxWitness]
			}
		default:
			v.Kind = Consistent
			if v.ObserverSeen && !v.ObserverConsistent {
				v.ObserverStricter = true
			}
		}
		rep.Verdicts = append(rep.Verdicts, v)
	}

	return rep
}

// stuckUnits names the units a never-finalized snapshot is still
// waiting on, with the events that explain why (dropped notifications
// first, else their last record).
func stuckUnits(id packet.SeqID, expected map[unitKey]bool, got map[unitKey]journal.Event, records map[unitKey][]journal.Event, drops map[int][]journal.Event) ([]string, []journal.Event) {
	var stuck []unitKey
	for u := range expected {
		if _, ok := got[u]; !ok {
			stuck = append(stuck, u)
		}
	}
	sort.Slice(stuck, func(a, b int) bool {
		x, y := stuck[a], stuck[b]
		if x.sw != y.sw {
			return x.sw < y.sw
		}
		if x.port != y.port {
			return x.port < y.port
		}
		return x.dir < y.dir
	})
	var names []string
	var witness []journal.Event
	seenDropSwitch := map[int]bool{}
	for _, u := range stuck {
		names = append(names, u.String())
		if ds := drops[u.sw]; len(ds) > 0 && !seenDropSwitch[u.sw] {
			seenDropSwitch[u.sw] = true
			witness = append(witness, ds...)
		} else if chain := records[u]; len(chain) > 0 && len(witness) < maxWitness {
			last := chain[len(chain)-1]
			if last.NewID < id {
				witness = append(witness, last)
			}
		}
	}
	witness = dedupeEvents(witness)
	if len(witness) > maxWitness {
		witness = witness[:maxWitness]
	}
	return names, witness
}

func dedupeEvents(evs []journal.Event) []journal.Event {
	seen := map[uint64]bool{}
	out := evs[:0]
	for _, ev := range evs {
		if seen[ev.Seq] {
			continue
		}
		seen[ev.Seq] = true
		out = append(out, ev)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// WriteText renders the report for humans — shared by the `speedlight
// doctor` subcommand and the /audit?format=text endpoint.
func (r *Report) WriteText(w io.Writer) error {
	cons, incons, incomp := r.Counts()
	if _, err := fmt.Fprintf(w,
		"speedlight audit: %d events, max_id=%d wrap=%v channel_state=%v\n"+
			"snapshots: %d audited — %d consistent, %d inconsistent, %d incomplete, %d disagreement(s)\n",
		r.Events, r.MaxID, r.Wraparound, r.ChannelState,
		len(r.Verdicts), cons, incons, incomp, r.Disagreements); err != nil {
		return err
	}
	if r.Truncated {
		if _, err := fmt.Fprintln(w, "warning: journal is truncated (ring overwrote events); verdicts cover surviving events only"); err != nil {
			return err
		}
	}
	for _, v := range r.Verdicts {
		switch v.Kind {
		case Consistent:
			if _, err := fmt.Fprintf(w, "\nsnapshot %d: CONSISTENT", v.SnapshotID); err != nil {
				return err
			}
			if v.ObserverStricter {
				if _, err := fmt.Fprintf(w, " (observer flagged it inconsistent — its detection is conservative)"); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		default:
			kind := "INCONSISTENT"
			if v.Kind == Incomplete {
				kind = "INCOMPLETE"
			}
			if _, err := fmt.Fprintf(w, "\nsnapshot %d: %s — %s\n", v.SnapshotID, kind, v.Cause); err != nil {
				return err
			}
			if len(v.Stuck) > 0 {
				if _, err := fmt.Fprintf(w, "  stuck: %v\n", v.Stuck); err != nil {
					return err
				}
			}
			for _, ev := range v.Witness {
				if _, err := fmt.Fprintf(w, "  witness: %s\n", ev); err != nil {
					return err
				}
			}
			if v.Disagreement {
				if _, err := fmt.Fprintln(w, "  ** DISAGREEMENT: observer reported this snapshot consistent — likely detection defect **"); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// HTTPHandler serves the report produced by run as JSON, or the human
// rendering with ?format=text — the /audit endpoint on the telemetry
// mux.
func HTTPHandler(run func() *Report) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rep := run()
		if rep == nil {
			http.Error(w, "no journal attached", http.StatusServiceUnavailable)
			return
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if err := rep.WriteText(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
