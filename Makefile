# Speedlight build entry points. CI runs the same commands; `make lint`
# is the one-shot local equivalent of the speedlightvet CI gate.

SLVET := $(CURDIR)/bin/speedlightvet

.PHONY: all build test race lint vet bench-shards clean

all: build lint test

build:
	go build ./...

test:
	go test -shuffle=on ./...

race:
	go test -race ./...

# lint builds the protocol-invariant analyzer suite and runs it over
# every package through the go vet driver (which also covers _test.go
# files, unlike standalone invocation).
lint: $(SLVET)
	go vet -vettool=$(SLVET) ./...

$(SLVET): FORCE
	go build -o $(SLVET) ./cmd/speedlightvet

vet:
	go vet ./...

# bench-shards runs the serial-vs-sharded scaling benchmarks that the
# CI bench-regression job gates on (1.5x at 4 shards on the fat-tree,
# multi-core runners only).
bench-shards:
	go test -run '^$$' -bench BenchmarkShardScaling -benchtime 5x -timeout 30m .

clean:
	rm -rf bin

.PHONY: FORCE
FORCE:
