# Speedlight build entry points. CI runs the same commands; `make lint`
# is the one-shot local equivalent of the speedlightvet CI gate.

SLVET := $(CURDIR)/bin/speedlightvet

.PHONY: all help build test race lint hotgate vet bench-shards bench-json churn clean

all: build lint hotgate test

help:
	@echo "Speedlight build targets:"
	@echo "  all          build + lint + hotgate + test"
	@echo "  build        go build ./..."
	@echo "  test         go test -shuffle=on ./..."
	@echo "  race         go test -race ./..."
	@echo "  lint         build speedlightvet and run the analyzer suite"
	@echo "  hotgate      cross-check //speedlight:hotpath functions against"
	@echo "               their //speedlight:allocgate allocation gates"
	@echo "  vet          plain go vet"
	@echo "  bench-shards serial-vs-sharded scaling benchmarks (CI gate)"
	@echo "  bench-json   regenerate BENCH_10.json (hot-path allocs/op,"
	@echo "               trace-overhead pair, snapstore ingest/query"
	@echo "               rates, events/sec, with the frozen pre-PR"
	@echo "               baseline)"
	@echo "  churn        seeded churn scenario suite under -race with"
	@echo "               shuffled order, then all four CLI scenarios at"
	@echo "               shards 1/4/8 (CI churn-scenarios gate)"
	@echo "  clean        remove bin/"

build:
	go build ./...

test:
	go test -shuffle=on ./...

race:
	go test -race ./...

# lint builds the protocol-invariant analyzer suite and runs it over
# every package through the go vet driver. Standalone invocation
# (`bin/speedlightvet ./...`) covers the same set including _test.go
# files and adds -format=github|sarif for CI annotation output.
lint: $(SLVET)
	@start=$$(date +%s%N); status=0; \
	go vet -vettool=$(SLVET) ./... || status=$$?; \
	end=$$(date +%s%N); \
	echo "speedlightvet wall-clock: $$(( (end - start) / 1000000 )) ms"; \
	exit $$status

$(SLVET): FORCE
	go build -o $(SLVET) ./cmd/speedlightvet

# hotgate verifies every //speedlight:hotpath function is named by a
# //speedlight:allocgate annotation on an AllocsPerRun test or 0-alloc
# benchmark, and that no annotation is stale.
hotgate:
	go run ./cmd/hotgate

vet:
	go vet ./...

# bench-shards runs the serial-vs-sharded scaling benchmarks that the
# CI bench-regression job gates on (2.5x at 8 shards on both the
# fat-tree and leaf-spine fabrics, runners with >=8 CPUs only).
bench-shards:
	go test -run '^$$' -bench BenchmarkShardScaling -benchtime 5x -timeout 30m .

# churn is the churn-scenarios CI gate: the seeded scenario suite
# (rolling upgrade, link-flap storm, partition-and-heal, provisioning
# ramp) plus the reconciliation-controller unit tests under the race
# detector with shuffled order — each equivalence test internally diffs
# serial against shards {1,2,4,8} — then every CLI scenario end to end
# at shards 1, 4 and 8, failing on any silent disagreement.
churn:
	go test -race -shuffle=on -run 'TestChurn|TestReconcile|TestScenario|TestClassify|TestNewAdopts|TestPropertyRandomizedEquivalence' \
		./internal/emunet ./internal/reconcile
	@for s in 1 4 8; do \
	  for m in rolling-upgrade link-flap-storm partition-heal provisioning-ramp; do \
	    echo "== churn $$m shards=$$s"; \
	    out=$$(go run ./cmd/speedlight -leaves 4 -spines 2 -hosts 2 -snapshots 8 \
	      -channel-state -shards $$s -churn $$m) || exit 1; \
	    echo "$$out" | grep "churn scenario" || exit 1; \
	  done; \
	done

# bench-json reruns the hot-path, trace-overhead, snapstore and scaling
# benchmarks and rewrites BENCH_10.json (committed) with after-numbers
# from this machine next to the frozen pre-PR baseline. CI uploads the
# file as an artifact and gates allocs/op == 0 on the hot-path
# benchmarks plus traced throughput within 3% of the untraced baseline.
bench-json:
	sh scripts/bench_json.sh BENCH_10.json

clean:
	rm -rf bin

.PHONY: FORCE
FORCE:
