# Speedlight build entry points. CI runs the same commands; `make lint`
# is the one-shot local equivalent of the speedlightvet CI gate.

SLVET := $(CURDIR)/bin/speedlightvet

.PHONY: all help build test race lint vet bench-shards bench-json clean

all: build lint test

help:
	@echo "Speedlight build targets:"
	@echo "  all          build + lint + test"
	@echo "  build        go build ./..."
	@echo "  test         go test -shuffle=on ./..."
	@echo "  race         go test -race ./..."
	@echo "  lint         build speedlightvet and run the analyzer suite"
	@echo "  vet          plain go vet"
	@echo "  bench-shards serial-vs-sharded scaling benchmarks (CI gate)"
	@echo "  bench-json   regenerate BENCH_7.json (hot-path allocs/op,"
	@echo "               trace-overhead pair, snapstore ingest/query"
	@echo "               rates, events/sec, with the frozen pre-PR"
	@echo "               baseline)"
	@echo "  clean        remove bin/"

build:
	go build ./...

test:
	go test -shuffle=on ./...

race:
	go test -race ./...

# lint builds the protocol-invariant analyzer suite and runs it over
# every package through the go vet driver (which also covers _test.go
# files, unlike standalone invocation).
lint: $(SLVET)
	go vet -vettool=$(SLVET) ./...

$(SLVET): FORCE
	go build -o $(SLVET) ./cmd/speedlightvet

vet:
	go vet ./...

# bench-shards runs the serial-vs-sharded scaling benchmarks that the
# CI bench-regression job gates on (1.5x at 4 shards on the fat-tree,
# multi-core runners only).
bench-shards:
	go test -run '^$$' -bench BenchmarkShardScaling -benchtime 5x -timeout 30m .

# bench-json reruns the hot-path, trace-overhead, snapstore and scaling
# benchmarks and rewrites BENCH_7.json (committed) with after-numbers
# from this machine next to the frozen pre-PR baseline. CI uploads the
# file as an artifact and gates allocs/op == 0 on the hot-path
# benchmarks plus traced throughput within 3% of the untraced baseline.
bench-json:
	sh scripts/bench_json.sh BENCH_7.json

clean:
	rm -rf bin

.PHONY: FORCE
FORCE:
